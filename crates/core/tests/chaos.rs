//! Chaos tests for the self-healing service layer.
//!
//! Three fault families, each compared against an unfaulted oracle:
//!
//! * **Transient storage faults heal and converge:** scripted
//!   [`FlakyStorage`] schedules — every operation class, several
//!   fail-run lengths and arming offsets, seeded random fault rates —
//!   under concurrent producers. The service may degrade, but the heal
//!   probe must bring it back, every producer must land every batch via
//!   [`MaintainerService::stage_with_retry`], and the final state (and
//!   a recovery from the surviving bytes) must equal the unfaulted run.
//! * **Permanent faults degrade to read-only, nobody hangs:** with
//!   fsync failing permanently, every producer — including ones parked
//!   on a full staging gate — returns a typed error, snapshots keep
//!   serving the last acknowledged state, and recovery lands exactly on
//!   that state.
//! * **Committer panic storms are bounded:** each panic inside the
//!   restart budget is healed by a supervised restart (the service
//!   keeps committing afterwards); the panic past the budget is
//!   terminal, with typed refusals, a still-serving snapshot, and no
//!   acknowledged commit lost.

use fup_core::{
    CommitPolicy, HealthState, Maintainer, MaintainerBuilder, MaintainerService, RetryPolicy,
    ServiceError,
};
use fup_mining::{MinConfidence, MinSupport};
use fup_tidb::{
    DurableStorage, FlakyStorage, ItemId, MemStorage, OpClass, Transaction, UpdateBatch,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tx(items: &[u32]) -> Transaction {
    Transaction::from_items(items.iter().copied())
}

fn builder() -> MaintainerBuilder {
    Maintainer::builder()
        .min_support(MinSupport::percent(40))
        .min_confidence(MinConfidence::percent(60))
}

fn history() -> Vec<Transaction> {
    vec![
        tx(&[1, 2, 3]),
        tx(&[1, 2]),
        tx(&[2, 3]),
        tx(&[1, 3]),
        tx(&[4, 5]),
    ]
}

/// The insert-only batches producer `p` stages. Insert-only on purpose:
/// the final database is then a multiset union, identical under every
/// interleaving, so the faulted concurrent run has a well-defined
/// unfaulted oracle.
fn producer_batches(p: u64) -> Vec<UpdateBatch> {
    (0..4u64)
        .map(|i| {
            let k = p * 4 + i;
            UpdateBatch::insert_only(vec![
                tx(&[1 + (k % 5) as u32, 6 + (k % 3) as u32]),
                tx(&[2, 3, 4 + (k % 4) as u32]),
            ])
        })
        .collect()
}

/// The unfaulted oracle: the same history and batches applied on a
/// plain in-memory session, one commit per batch.
fn unfaulted_reference(producers: u64) -> Maintainer {
    let mut m = builder().build(history()).unwrap();
    for p in 0..producers {
        for batch in producer_batches(p) {
            m.apply(batch).unwrap();
        }
    }
    m
}

/// The database as an order-independent multiset: tids are assigned in
/// arrival order (which producer interleavings permute), so states are
/// compared by their sorted transaction contents, never by tid.
fn live_multiset(m: &Maintainer) -> Vec<Vec<ItemId>> {
    let mut live: Vec<Vec<ItemId>> = m.store().iter().map(|(_, t)| t.items().to_vec()).collect();
    live.sort_unstable();
    live
}

fn assert_same_final_state(got: &Maintainer, want: &Maintainer, label: &str) {
    assert!(
        got.large_itemsets().same_itemsets(want.large_itemsets()),
        "[{label}] itemsets diverge from the unfaulted run: {:?}",
        got.large_itemsets().diff(want.large_itemsets())
    );
    assert_eq!(
        got.rules().len(),
        want.rules().len(),
        "[{label}] rule count diverges"
    );
    assert_eq!(
        live_multiset(got),
        live_multiset(want),
        "[{label}] live transactions diverge"
    );
    got.verify_consistency().unwrap();
}

/// Spin until `probe` passes or the deadline expires.
fn wait_for(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// A producer that must land every batch: bounded retries absorb
/// backpressure and degraded windows, and an exhausted budget loops —
/// with a hang deadline — until the heal probe reopens admissions. Any
/// other error is a test failure.
fn pump(service: &MaintainerService, batches: Vec<UpdateBatch>) {
    let deadline = Instant::now() + Duration::from_secs(30);
    for batch in batches {
        loop {
            assert!(
                Instant::now() < deadline,
                "producer wedged: the service never healed"
            );
            match service.stage_with_retry(batch.clone(), RetryPolicy::attempts(5)) {
                Ok(()) => break,
                Err(ServiceError::RetriesExhausted { .. }) => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => panic!("producer hit a non-retryable error: {e}"),
            }
        }
    }
}

/// Flushes until a round covers everything staged, riding out degraded
/// windows (typed, never hanging) and failed rounds in between.
fn flush_until_clean(service: &MaintainerService) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match service.flush() {
            Ok(_) => return,
            Err(ServiceError::Degraded | ServiceError::Commit(_)) => {
                assert!(Instant::now() < deadline, "the service never healed");
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("flush failed with a non-retryable error: {e}"),
        }
    }
}

/// Drives `producers` concurrent pumps against a faulted service, waits
/// for convergence and heal, and checks the shutdown state — and a
/// recovery from the surviving storage bytes — against the unfaulted
/// oracle.
fn converge_and_check(
    service: MaintainerService,
    mem: &Arc<MemStorage>,
    producers: u64,
    label: &str,
) {
    std::thread::scope(|scope| {
        for p in 0..producers {
            let service = &service;
            scope.spawn(move || pump(service, producer_batches(p)));
        }
    });
    flush_until_clean(&service);
    wait_for("the service to heal", || {
        service.health().state == HealthState::Healthy
    });
    assert_eq!(
        service.pending_ops(),
        (0, 0),
        "[{label}] backlog not drained"
    );

    let (maintainer, _metrics) = service.shutdown();
    let reference = unfaulted_reference(producers);
    assert_same_final_state(&maintainer, &reference, label);

    // Every acknowledged commit survives a crash-recovery from the
    // bytes the faulted run actually managed to store.
    let image: Arc<dyn DurableStorage> = Arc::new(MemStorage::from_files(mem.files()));
    let (recovered, _report) = builder().recover(image).unwrap();
    assert_same_final_state(&recovered, &maintainer, &format!("{label} / recovered"));
}

fn chaos_policy() -> CommitPolicy {
    CommitPolicy::default()
        .every_ops(2)
        .with_poll_interval(Duration::from_millis(1))
        .staging_capacity(64)
}

/// Launches a durable service over a scripted [`FlakyStorage`]: after
/// `skip` clean operations of `class`, the next `fail` fail transiently.
fn run_scripted_case(class: OpClass, skip: u64, fail: u64, producers: u64) {
    let mem = Arc::new(MemStorage::new());
    let flaky = Arc::new(FlakyStorage::new(
        Arc::clone(&mem) as Arc<dyn DurableStorage>
    ));
    let session = builder()
        .build_durable(history(), Arc::clone(&flaky) as Arc<dyn DurableStorage>)
        .unwrap();
    let service = MaintainerService::launch(session, chaos_policy()).unwrap();
    // Armed only after the clean build so every case starts from the
    // same durable baseline; the schedule then hits live traffic.
    flaky.fail_after(class, skip, fail);
    let label = format!("{class:?} skip={skip} fail={fail} producers={producers}");
    converge_and_check(service, &mem, producers, &label);
}

/// Transient faults on **every** storage operation class — absorbed
/// within the retry budget (`fail=1,3`) or past it (`fail=6`, forcing a
/// degraded window the probe must heal) — always converge to the
/// unfaulted state. Classes a schedule never reaches (e.g. `Remove`
/// before any checkpoint GC) simply stay armed: the run is then a plain
/// clean-path check.
#[test]
fn transient_faults_on_every_op_class_heal_and_converge() {
    for class in OpClass::ALL {
        for &(skip, fail) in &[(0, 1), (1, 3), (4, 6)] {
            run_scripted_case(class, skip, fail, 2);
        }
    }
}

/// The convergence guarantee is producer-count independent: a single
/// producer and a contending crowd of eight both ride out schedules
/// that exhaust the retry budget.
#[test]
fn transient_faults_converge_with_one_and_eight_producers() {
    for &producers in &[1u64, 8] {
        run_scripted_case(OpClass::Append, 0, 6, producers);
        run_scripted_case(OpClass::Sync, 2, 6, producers);
    }
}

/// Seeded random fault injection: every storage operation fails
/// transiently with probability 1.5%, across several seeds. No
/// schedule-shaped assumptions — just the invariant: converge, heal,
/// match the oracle.
#[test]
fn seeded_random_fault_rates_converge() {
    for seed in [0xfeed_u64, 0xbeef, 0x5eed_cafe] {
        let mem = Arc::new(MemStorage::new());
        let flaky = Arc::new(FlakyStorage::with_fault_rate(
            Arc::clone(&mem) as Arc<dyn DurableStorage>,
            seed,
            150,
        ));
        let session = builder()
            .build_durable(history(), Arc::clone(&flaky) as Arc<dyn DurableStorage>)
            .unwrap();
        let service = MaintainerService::launch(session, chaos_policy()).unwrap();
        converge_and_check(service, &mem, 4, &format!("seed={seed:#x}"));
    }
}

/// A permanent storage fault mid-traffic: the service fails to
/// read-only, every producer — including those parked on the full
/// staging gate — returns `ServiceError::Degraded` instead of hanging,
/// the snapshot keeps serving the last acknowledged state, and recovery
/// lands exactly there.
#[test]
fn a_permanent_fault_degrades_to_read_only_with_no_hung_producers() {
    let mem = Arc::new(MemStorage::new());
    let session = builder()
        .build_durable(history(), Arc::clone(&mem) as Arc<dyn DurableStorage>)
        .unwrap();
    // Manual commits and a tiny gate make the parking deterministic:
    // nothing drains until the main thread asks for a round.
    let policy = CommitPolicy::manual()
        .with_poll_interval(Duration::from_millis(1))
        .staging_capacity(4);
    let service = MaintainerService::launch(session, policy).unwrap();

    // One clean acknowledged round first — the state the degraded
    // service must go on serving.
    service
        .stage(UpdateBatch::insert_only(vec![tx(&[1, 2]), tx(&[2, 3])]))
        .unwrap();
    service.flush().unwrap();
    let acked_version = service.snapshot().version();

    // Fill the gate to capacity, then kill fsync permanently.
    for _ in 0..4 {
        service
            .stage(UpdateBatch::insert_only(vec![tx(&[1, 6])]))
            .unwrap();
    }
    mem.set_fail_sync(true);

    let mut outcomes = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for p in 0..8u64 {
            let service = &service;
            handles.push(scope.spawn(move || -> Result<(), ServiceError> {
                // Blocking stages on a full gate: these park until the
                // failed round below closes admissions and wakes them.
                for i in 0..4u64 {
                    service.stage(UpdateBatch::insert_only(vec![tx(&[
                        1 + ((p + i) % 5) as u32,
                        7,
                    ])]))?;
                }
                Ok(())
            }));
        }
        // Give the producers time to park on the gate, then force the
        // round that discovers the permanent fault.
        std::thread::sleep(Duration::from_millis(20));
        let flush_err = service.flush().unwrap_err();
        assert!(
            matches!(flush_err, ServiceError::Degraded | ServiceError::Commit(_)),
            "flush over dead storage must fail typed, got {flush_err:?}"
        );
        // thread::scope joins every producer: a hang here is the bug.
        for handle in handles {
            outcomes.push(handle.join().expect("producer panicked"));
        }
    });
    for outcome in outcomes {
        let err = outcome.expect_err("a producer staged past a permanent storage fault");
        assert!(
            matches!(err, ServiceError::Degraded),
            "parked producers must fail typed with Degraded, got {err:?}"
        );
    }

    // Read-only mode: terminal health, but reads still serve the last
    // acknowledged state.
    assert_eq!(service.health().state, HealthState::Failed);
    let snap = service.snapshot();
    assert_eq!(snap.version(), acked_version);
    assert!(!snap.rules().is_empty());

    // Shutdown completes (no panic: the committer idled, it never
    // died), and recovery from the power-loss image — synced bytes
    // only; the dead fsync pinned everything later in the page cache —
    // lands exactly on the last acknowledged commit.
    let (_maintainer, _metrics) = service.shutdown();
    let image: Arc<dyn DurableStorage> = Arc::new(MemStorage::from_files(mem.synced_files()));
    let (recovered, _report) = builder().recover(image).unwrap();
    assert_eq!(recovered.version(), acked_version);
    let mut reference = builder().build(history()).unwrap();
    reference
        .apply(UpdateBatch::insert_only(vec![tx(&[1, 2]), tx(&[2, 3])]))
        .unwrap();
    assert_same_final_state(&recovered, &reference, "permanent-fault recovery");
}

/// A committer panic storm: each panic inside the restart budget heals
/// through a supervised restart and the service keeps committing; the
/// panic past the budget is terminal — typed refusals, snapshot still
/// serving, every acknowledged commit recoverable.
#[test]
fn a_committer_panic_storm_is_bounded_by_the_restart_budget() {
    let mem = Arc::new(MemStorage::new());
    let session = builder()
        .build_durable(history(), Arc::clone(&mem) as Arc<dyn DurableStorage>)
        .unwrap();
    // Manual policy: rounds run only on `flush`, so each `commit_one`
    // is exactly one version. (An ops trigger would race the flush —
    // the triggered round can cover a pre-flush ticket, making the
    // flush drain an empty backlog as an extra no-op round, which
    // still bumps the version and throws off the reference count.)
    let policy = CommitPolicy::manual()
        .with_poll_interval(Duration::from_millis(1))
        .committer_restarts(2);
    let service = MaintainerService::launch(session, policy).unwrap();

    let mut committed = Vec::new();
    let mut commit_one = |service: &MaintainerService, items: &[u32]| {
        let batch = UpdateBatch::insert_only(vec![tx(items)]);
        committed.push(batch.clone());
        service.stage(batch).unwrap();
        service.flush().unwrap();
    };

    // Two panics, two supervised restarts — and a working service in
    // between each.
    for round in 0..2u64 {
        commit_one(&service, &[1 + round as u32, 6]);
        service.debug_kill_committer();
        wait_for("the supervised restart", || {
            let health = service.health();
            health.committer_restarts == round + 1 && health.state == HealthState::Healthy
        });
    }
    commit_one(&service, &[5, 6]);
    let served = service.snapshot();

    // The third panic exceeds the budget: terminal, typed, still
    // serving.
    service.debug_kill_committer();
    wait_for("the supervisor to give up", || {
        service.health().state == HealthState::Failed
    });
    let err = service
        .stage(UpdateBatch::insert_only(vec![tx(&[1, 2])]))
        .unwrap_err();
    assert!(matches!(err, ServiceError::CommitterGone), "got {err:?}");
    assert!(matches!(service.flush(), Err(ServiceError::CommitterGone)));
    assert_eq!(service.snapshot().version(), served.version());
    assert_eq!(service.health().committer_restarts, 2);

    // Drop (not shutdown) discards the dead pipeline without re-raising
    // its panic; recovery then proves no acknowledged commit was lost.
    drop(service);
    let image: Arc<dyn DurableStorage> = Arc::new(MemStorage::from_files(mem.files()));
    let (recovered, _report) = builder().recover(image).unwrap();
    let mut reference = builder().build(history()).unwrap();
    for batch in committed {
        reference.apply(batch).unwrap();
    }
    assert_eq!(recovered.version(), reference.version());
    assert_same_final_state(&recovered, &reference, "after the panic storm");
}

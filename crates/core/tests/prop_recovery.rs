//! Crash-recovery properties for durable sessions.
//!
//! * **WAL records round-trip:** every record type survives framing and
//!   is recovered exactly by the scanner, for arbitrary payloads.
//! * **Checkpoints round-trip:** a session checkpointed with arbitrary
//!   history, staged backlog, and committed rounds recovers bit-identical
//!   (itemsets + supports, rules, live set, staged batches).
//! * **Kill anywhere, recover exactly:** a crash at *every byte offset*
//!   of the WAL — and at every storage-operation budget, with torn
//!   appends and failing fsyncs — recovers to a state bit-identical to
//!   the uncrashed run at the last surviving commit boundary, never
//!   panicking and never losing an acknowledged commit.
//! * **Corrupt checkpoints degrade, not destroy:** a flipped byte in the
//!   newest checkpoint falls back to the previous one; with every
//!   checkpoint damaged, recovery fails with a typed error.

use fup_core::{CommitPolicy, DurabilityPolicy, Error, Maintainer, MaintainerService};
use fup_mining::{LargeItemsets, MinConfidence, MinSupport};
use fup_tidb::wal::{self, WalRecord};
use fup_tidb::{DurableStorage, MemStorage, Tid, Transaction, UpdateBatch};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn tx(items: &[u32]) -> Transaction {
    Transaction::from_items(items.iter().copied())
}

fn builder() -> fup_core::MaintainerBuilder {
    Maintainer::builder()
        .min_support(MinSupport::percent(40))
        .min_confidence(MinConfidence::percent(60))
}

fn history() -> Vec<Transaction> {
    vec![
        tx(&[1, 2, 3]),
        tx(&[1, 2]),
        tx(&[2, 3]),
        tx(&[1, 3]),
        tx(&[4, 5]),
    ]
}

/// The scripted workload every kill sweep runs: three committed rounds
/// (insert-only, mixed insert+delete, delete-only) and a staged tail that
/// never commits before the crash.
fn script_rounds() -> Vec<UpdateBatch> {
    vec![
        UpdateBatch::insert_only(vec![tx(&[1, 2]), tx(&[2, 3, 4])]),
        UpdateBatch {
            inserts: vec![tx(&[1, 2, 3])],
            deletes: vec![Tid(1)],
        },
        UpdateBatch::delete_only(vec![Tid(4)]),
    ]
}

/// One published state of the uncrashed reference run, keyed by version.
struct Reference {
    large: LargeItemsets,
    num_rules: usize,
    live: Vec<(Tid, Transaction)>,
}

/// Runs the script on a plain in-memory session and records the exact
/// published state at every version — the oracle every crash point is
/// compared against.
fn reference_states() -> HashMap<u64, Reference> {
    let mut m = builder().build(history()).unwrap();
    let mut states = HashMap::new();
    let mut record = |m: &Maintainer| {
        let mut live: Vec<(Tid, Transaction)> =
            m.store().iter().map(|(t, x)| (t, x.clone())).collect();
        live.sort_unstable_by_key(|&(t, _)| t);
        states.insert(
            m.version(),
            Reference {
                large: m.large_itemsets().clone(),
                num_rules: m.rules().len(),
                live,
            },
        );
    };
    record(&m);
    for batch in script_rounds() {
        m.apply(batch).unwrap();
        record(&m);
    }
    states
}

/// Asserts the recovered session equals the reference run at the version
/// recovery landed on.
fn assert_matches_reference(recovered: &Maintainer, states: &HashMap<u64, Reference>) {
    let reference = states.get(&recovered.version()).unwrap_or_else(|| {
        panic!(
            "recovered to version {} which the uncrashed run never published",
            recovered.version()
        )
    });
    assert!(
        recovered.large_itemsets().same_itemsets(&reference.large),
        "itemsets diverge at version {}: {:?}",
        recovered.version(),
        recovered.large_itemsets().diff(&reference.large)
    );
    assert_eq!(recovered.rules().len(), reference.num_rules);
    let mut live: Vec<(Tid, Transaction)> = recovered
        .store()
        .iter()
        .map(|(t, x)| (t, x.clone()))
        .collect();
    live.sort_unstable_by_key(|&(t, _)| t);
    assert_eq!(live, reference.live, "live set diverges");
    recovered.verify_consistency().unwrap();
}

/// Drives the scripted session against `storage`, ignoring storage
/// failures (the injected kill), and returns how many commits were
/// durably acknowledged.
fn drive_script(storage: Arc<MemStorage>, policy: DurabilityPolicy) -> u64 {
    let mut acked = 0u64;
    let Ok(mut m) = builder()
        .durability(policy)
        .build_durable(history(), storage as Arc<dyn DurableStorage>)
    else {
        return acked;
    };
    for batch in script_rounds() {
        if m.stage(batch).is_err() {
            return acked;
        }
        match m.commit() {
            Ok(_) => acked += 1,
            Err(_) => return acked,
        }
    }
    // The staged tail: durably logged, never committed.
    let _ = m.stage(UpdateBatch::insert_only(vec![tx(&[6, 7])]));
    acked
}

// ---------------------------------------------------------- sweeps --

/// Tentpole: crash at every WAL byte offset. The surviving prefix must
/// recover to exactly the last commit boundary it contains — never a
/// panic, never a half-applied round, never a lost acknowledged commit.
#[test]
fn kill_at_every_wal_byte_offset_recovers_exactly() {
    let states = reference_states();
    // No mid-run checkpoints: the whole script lives in wal-00000000.
    let storage = Arc::new(MemStorage::new());
    assert_eq!(
        drive_script(
            Arc::clone(&storage),
            DurabilityPolicy {
                checkpoint_every_rounds: u64::MAX,
                ..Default::default()
            },
        ),
        3
    );
    let files = storage.files();
    let wal = files.get("wal-00000000").expect("active WAL segment");
    assert!(wal.len() > 50, "script should produce a non-trivial WAL");

    let mut versions_seen = std::collections::BTreeSet::new();
    for cut in 0..=wal.len() {
        let image = MemStorage::from_files(files.clone());
        image.truncate_file("wal-00000000", cut);
        let (recovered, report) = builder()
            .recover(Arc::new(image) as Arc<dyn DurableStorage>)
            .unwrap_or_else(|e| panic!("recovery must succeed at cut {cut}: {e}"));
        assert_matches_reference(&recovered, &states);
        versions_seen.insert(report.version);
        // A mid-record cut is reported as a dropped tail, not hidden.
        if cut < wal.len() && report.wal_tail_dropped.is_none() {
            // The cut landed exactly on a record boundary — fine, but the
            // recovered version must then cover every boundary before it.
            assert_eq!(report.version, recovered.version());
        }
    }
    // The sweep must actually traverse every commit boundary.
    assert_eq!(
        versions_seen.into_iter().collect::<Vec<_>>(),
        vec![0, 1, 2, 3],
        "every prefix version should be reachable by some cut"
    );
}

/// Tentpole: kill the storage after every possible operation budget (with
/// three torn-append variants each), spanning kills mid-record, at record
/// boundaries, mid-checkpoint, and between a checkpoint and its WAL
/// rotation. Recovery from each crash image is exact.
#[test]
fn kill_at_every_storage_op_budget_recovers_exactly() {
    let states = reference_states();
    let policy = DurabilityPolicy {
        // Checkpoint every round: the sweep crosses encode → write_atomic
        // → fresh-WAL append → gc at every boundary.
        checkpoint_every_rounds: 1,
        retain_checkpoints: 2,
        ..Default::default()
    };
    let mut exhausted = false;
    for budget in 0u64..200 {
        let mut any_fault = false;
        for tear_bytes in [0usize, 1, 7] {
            let storage = Arc::new(MemStorage::new());
            storage.fail_after(budget, tear_bytes);
            drive_script(Arc::clone(&storage), policy);
            any_fault |= storage.faults_fired() > 0;
            let image = Arc::new(MemStorage::from_files(storage.files()));
            match builder().recover(image as Arc<dyn DurableStorage>) {
                Ok((recovered, _report)) => assert_matches_reference(&recovered, &states),
                Err(e) => {
                    // Only one failure is legitimate: the kill hit the very
                    // first write, leaving no checkpoint at all.
                    assert!(
                        matches!(e, Error::Recovery { .. }),
                        "budget {budget}: unexpected error {e}"
                    );
                    assert!(
                        budget == 0,
                        "budget {budget} left no recoverable checkpoint"
                    );
                }
            }
        }
        if !any_fault {
            // The whole script fit under the budget — the sweep covered
            // every operation the workload performs.
            exhausted = true;
            break;
        }
    }
    assert!(exhausted, "sweep never reached a fault-free run");
}

/// Tentpole satellite: the byte-offset kill sweep under **group commit**
/// — stage-record fsyncs batched four at a time with a generous age
/// bound, so cuts land *inside* grouped (appended-but-unflushed) runs as
/// well as on barrier boundaries. Every prefix must still recover to a
/// state the uncrashed run published.
#[test]
fn kill_at_every_wal_byte_offset_with_group_commit_recovers_exactly() {
    let states = reference_states();
    let storage = Arc::new(MemStorage::new());
    assert_eq!(
        drive_script(
            Arc::clone(&storage),
            DurabilityPolicy {
                checkpoint_every_rounds: u64::MAX,
                ..DurabilityPolicy::group_commit(4, std::time::Duration::from_secs(3600))
            },
        ),
        3
    );
    let files = storage.files();
    let wal = files.get("wal-00000000").expect("active WAL segment");
    let mut versions_seen = std::collections::BTreeSet::new();
    for cut in 0..=wal.len() {
        let image = MemStorage::from_files(files.clone());
        image.truncate_file("wal-00000000", cut);
        let (recovered, report) = builder()
            .recover(Arc::new(image) as Arc<dyn DurableStorage>)
            .unwrap_or_else(|e| panic!("recovery must succeed at cut {cut}: {e}"));
        assert_matches_reference(&recovered, &states);
        versions_seen.insert(report.version);
    }
    assert_eq!(
        versions_seen.into_iter().collect::<Vec<_>>(),
        vec![0, 1, 2, 3],
        "every prefix version should be reachable by some cut"
    );
}

/// Tentpole satellite: the storage-op kill sweep under group commit —
/// torn appends and killed syncs while fsyncs are batched. Every crash
/// image recovers exactly; acknowledged commits never depend on the
/// batched stage syncs because boundaries always sync.
#[test]
fn kill_at_every_storage_op_budget_with_group_commit_recovers_exactly() {
    let states = reference_states();
    let policy = DurabilityPolicy {
        checkpoint_every_rounds: 1,
        retain_checkpoints: 2,
        ..DurabilityPolicy::group_commit(4, std::time::Duration::from_secs(3600))
    };
    let mut exhausted = false;
    for budget in 0u64..200 {
        let mut any_fault = false;
        for tear_bytes in [0usize, 1, 7] {
            let storage = Arc::new(MemStorage::new());
            storage.fail_after(budget, tear_bytes);
            drive_script(Arc::clone(&storage), policy);
            any_fault |= storage.faults_fired() > 0;
            let image = Arc::new(MemStorage::from_files(storage.files()));
            match builder().recover(image as Arc<dyn DurableStorage>) {
                Ok((recovered, _report)) => assert_matches_reference(&recovered, &states),
                Err(e) => {
                    assert!(
                        matches!(e, Error::Recovery { .. }),
                        "budget {budget}: unexpected error {e}"
                    );
                    assert!(
                        budget == 0,
                        "budget {budget} left no recoverable checkpoint"
                    );
                }
            }
        }
        if !any_fault {
            exhausted = true;
            break;
        }
    }
    assert!(exhausted, "sweep never reached a fault-free run");
}

/// Tentpole satellite: a **power-loss** crash under group commit — the
/// medium keeps only the fsynced prefix ([`MemStorage::synced_files`]).
/// Acknowledged commits survive (their boundary records are
/// unconditional sync barriers); only the staged-but-unacknowledged tail
/// sitting in the open group is lost, which is the documented contract.
#[test]
fn power_loss_under_group_commit_keeps_every_acknowledged_commit() {
    let states = reference_states();
    let storage = Arc::new(MemStorage::new());
    assert_eq!(
        drive_script(
            Arc::clone(&storage),
            DurabilityPolicy {
                checkpoint_every_rounds: u64::MAX,
                ..DurabilityPolicy::group_commit(64, std::time::Duration::from_secs(3600))
            },
        ),
        3
    );
    // The process-crash image still holds the staged tail...
    let process_image = Arc::new(MemStorage::from_files(storage.files()));
    let (_, report) = builder()
        .recover(process_image as Arc<dyn DurableStorage>)
        .unwrap();
    assert_eq!(report.restaged_batches, 1, "the OS buffers kept the tail");
    // ...but the power-loss image cuts at the last sync barrier: the
    // final Commit boundary. All three acked rounds survive; the
    // unflushed staged tail is gone.
    let power_image = Arc::new(MemStorage::from_files(storage.synced_files()));
    let (recovered, report) = builder()
        .recover(power_image as Arc<dyn DurableStorage>)
        .unwrap();
    assert_eq!(report.version, 3, "no acknowledged commit may be lost");
    assert_eq!(
        report.restaged_batches, 0,
        "the open group's stage record never reached the medium"
    );
    assert_matches_reference(&recovered, &states);
}

/// An fsync failure is a commit that was never acknowledged: the session
/// poisons itself, and recovery lands on a state the uncrashed run
/// published — with the un-acked work either absent or fully applied
/// (the data may have reached the medium), never half-applied.
#[test]
fn failing_fsync_poisons_but_recovers_consistently() {
    let states = reference_states();
    let storage = Arc::new(MemStorage::new());
    let mut m = builder()
        .build_durable(history(), Arc::clone(&storage) as Arc<dyn DurableStorage>)
        .unwrap();
    m.stage(script_rounds().remove(0)).unwrap();
    m.commit().unwrap();
    storage.set_fail_sync(true);
    let err = m
        .stage(UpdateBatch::insert_only(vec![tx(&[8, 9])]))
        .unwrap_err();
    assert!(matches!(err, Error::Store(fup_tidb::Error::Io { .. })));
    // Poisoned: nothing else is accepted.
    assert!(m.commit().is_err());

    let image = Arc::new(MemStorage::from_files(storage.files()));
    let (recovered, _) = builder().recover(image as Arc<dyn DurableStorage>).unwrap();
    assert_matches_reference(&recovered, &states);
    assert_eq!(recovered.version(), 1, "the acked round survives");
}

/// Satellite: a corrupt newest checkpoint falls back to the previous one
/// (with a longer replay); corrupting every checkpoint yields a typed
/// error, not a panic.
#[test]
fn corrupt_checkpoints_fall_back_then_fail_typed() {
    let states = reference_states();
    let storage = Arc::new(MemStorage::new());
    drive_script(
        Arc::clone(&storage),
        DurabilityPolicy {
            checkpoint_every_rounds: 1,
            retain_checkpoints: 3,
            ..Default::default()
        },
    );
    let files = storage.files();
    let mut ckpts: Vec<&String> = files.keys().filter(|n| n.starts_with("ckpt-")).collect();
    ckpts.sort();
    assert!(ckpts.len() >= 2, "script should retain several checkpoints");

    // Flip one byte somewhere in the newest checkpoint: recovery falls
    // back and still reproduces the final state (the WAL tail replays the
    // rounds the older checkpoint misses).
    let newest = ckpts.last().unwrap().to_string();
    for offset in [
        0usize,
        9,
        files[&newest].len() / 2,
        files[&newest].len() - 1,
    ] {
        let image = MemStorage::from_files(files.clone());
        image.flip_byte(&newest, offset);
        let (recovered, report) = builder()
            .recover(Arc::new(image) as Arc<dyn DurableStorage>)
            .unwrap_or_else(|e| panic!("fallback must succeed (flip at {offset}): {e}"));
        assert!(
            !report.corrupt_checkpoints.is_empty(),
            "the damaged checkpoint must be reported"
        );
        assert_matches_reference(&recovered, &states);
        assert_eq!(recovered.version(), 3, "fallback + replay reaches the end");
    }

    // Damage every checkpoint: a typed Recovery error, never a panic.
    let image = MemStorage::from_files(files.clone());
    for name in &ckpts {
        image.flip_byte(name, files[*name].len() / 2);
    }
    let err = builder()
        .recover(Arc::new(image) as Arc<dyn DurableStorage>)
        .unwrap_err();
    assert!(matches!(err, Error::Recovery { .. }), "{err:?}");
}

/// Satellite: the one-call service restart path — recover a crash image
/// straight into a running [`MaintainerService`], flush the re-queued
/// backlog, and land on the uncrashed run's final state.
#[test]
fn service_recovers_from_crash_image_and_commits_backlog() {
    let storage = Arc::new(MemStorage::new());
    drive_script(Arc::clone(&storage), DurabilityPolicy::default());
    let image = Arc::new(MemStorage::from_files(storage.files()));
    let (service, report) =
        MaintainerService::recover(builder(), image, CommitPolicy::manual()).unwrap();
    assert_eq!(report.version, 3);
    assert_eq!(report.restaged_batches, 1, "the staged tail is re-queued");
    let flushed = service.flush().unwrap();
    assert_eq!(flushed.version, 4);
    let snapshot = service.snapshot();
    assert_eq!(snapshot.num_transactions(), 7);
    let (m, _) = service.shutdown();
    m.verify_consistency().unwrap();
}

// ------------------------------------------------------ round-trips --

fn arb_transaction() -> impl Strategy<Value = Transaction> {
    proptest::collection::vec(0u32..32, 1..6).prop_map(Transaction::from_items)
}

fn sorted_dedup(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v.dedup();
    v
}

fn arb_batch() -> impl Strategy<Value = UpdateBatch> {
    (
        proptest::collection::vec(arb_transaction(), 0..5),
        proptest::collection::vec(0u64..1 << 48, 0..5),
    )
        .prop_map(|(inserts, deletes)| UpdateBatch {
            inserts,
            deletes: sorted_dedup(deletes).into_iter().map(Tid).collect(),
        })
}

fn arb_tickets() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..1 << 48, 0..8).prop_map(sorted_dedup)
}

/// One of the three record types, picked by a discriminant (the vendored
/// proptest has no `prop_oneof!`).
fn arb_record() -> impl Strategy<Value = WalRecord> {
    (0u8..3, 0u64..1 << 48, arb_batch(), arb_tickets()).prop_map(|(kind, n, batch, tickets)| {
        match kind {
            0 => WalRecord::Stage { ticket: n, batch },
            1 => WalRecord::Commit {
                version: n,
                tickets,
            },
            _ => WalRecord::Abort { tickets },
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite: every WAL record type round-trips through framing, in
    /// arbitrary sequences; the scanner recovers all of them with no tail
    /// error.
    #[test]
    fn wal_records_roundtrip(records in proptest::collection::vec(arb_record(), 0..8)) {
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&r.to_framed_bytes());
        }
        let scan = wal::read_records(&bytes);
        prop_assert!(scan.tail_error.is_none());
        prop_assert_eq!(scan.valid_len, bytes.len());
        prop_assert_eq!(scan.records, records);
    }

    /// Satellite: truncating a framed WAL stream anywhere never panics,
    /// keeps a valid record prefix, and reports the damage on non-boundary
    /// cuts.
    #[test]
    fn torn_wal_always_yields_a_valid_prefix(
        records in proptest::collection::vec(arb_record(), 1..5),
        cut_seed in any::<prop::sample::Index>(),
    ) {
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &records {
            bytes.extend_from_slice(&r.to_framed_bytes());
            boundaries.push(bytes.len());
        }
        let cut = cut_seed.index(bytes.len() + 1);
        let scan = wal::read_records(&bytes[..cut]);
        // The valid prefix is the records wholly inside the cut.
        let n = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        prop_assert_eq!(scan.records.len(), n);
        prop_assert_eq!(&scan.records[..], &records[..n]);
        prop_assert_eq!(scan.tail_error.is_some(), !boundaries.contains(&cut));
    }

    /// Satellite: the checkpoint manifest round-trips through a real
    /// crash: arbitrary history and staged backlog, checkpoint, recover
    /// from the bytes alone, compare everything.
    #[test]
    fn checkpoint_roundtrips_through_recovery(
        history in proptest::collection::vec(arb_transaction(), 0..12),
        committed in proptest::collection::vec(arb_transaction(), 0..6),
        staged in proptest::collection::vec(arb_transaction(), 0..6),
        delete_seed in proptest::collection::vec(any::<prop::sample::Index>(), 0..3),
    ) {
        let storage = Arc::new(MemStorage::new());
        let mut m = builder()
            .build_durable(history, Arc::clone(&storage) as Arc<dyn DurableStorage>)
            .unwrap();
        if !committed.is_empty() {
            m.stage(UpdateBatch::insert_only(committed)).unwrap();
            m.commit().unwrap();
        }
        // Deletes drawn from live tids, staged but not committed.
        let tids: Vec<Tid> = m.store().iter().map(|(t, _)| t).collect();
        let mut deletes: Vec<Tid> = delete_seed
            .iter()
            .filter(|_| !tids.is_empty())
            .map(|ix| tids[ix.index(tids.len())])
            .collect();
        deletes.sort();
        deletes.dedup();
        if !staged.is_empty() || !deletes.is_empty() {
            m.stage(UpdateBatch { inserts: staged, deletes }).unwrap();
        }
        m.checkpoint().unwrap();

        let image = Arc::new(MemStorage::from_files(storage.files()));
        let expected_staged = m.staged();
        let (recovered, report) = builder()
            .recover(image as Arc<dyn DurableStorage>)
            .unwrap();
        prop_assert_eq!(recovered.version(), m.version());
        prop_assert_eq!(report.replayed_rounds, 0, "checkpoint covers all rounds");
        prop_assert!(recovered.large_itemsets().same_itemsets(m.large_itemsets()));
        prop_assert_eq!(recovered.rules().len(), m.rules().len());
        prop_assert_eq!(recovered.staged(), expected_staged);
        prop_assert_eq!(recovered.len(), m.len());
        prop_assert_eq!(
            recovered.store().live_view().tombstones_sorted(),
            m.store().live_view().tombstones_sorted()
        );
    }
}

//! Stress and property coverage for concurrent staging and the
//! maintainer service.
//!
//! The load-bearing claim: **staging from N producer threads followed by
//! one commit yields rule sets and itemset supports bit-identical to the
//! same batches staged serially** — across producer counts {2, 8} and
//! both fixed counting backends. The concurrent path differs only in
//! which shard each batch lands in and in arrival interleaving; support
//! counting is order-independent, so the mined state must not move.

use fup_core::service::{CommitPolicy, MaintainerService};
use fup_core::{Maintainer, UpdatePolicy};
use fup_datagen::{generate_multi_split, GenParams};
use fup_mining::{CountingBackend, MinConfidence, MinSupport};
use fup_tidb::{Tid, Transaction, UpdateBatch};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

fn workload(seed: u64) -> (Vec<Transaction>, Vec<Vec<Transaction>>) {
    let params = GenParams {
        num_transactions: 1_500,
        increment_size: 0,
        num_items: 200,
        num_patterns: 150,
        pool_size: 25,
        seed,
        ..GenParams::default()
    };
    let (history, increments) = generate_multi_split(&params, &[60; 16]);
    (
        history.into_transactions(),
        increments
            .into_iter()
            .map(|db| db.into_transactions())
            .collect(),
    )
}

fn build(history: Vec<Transaction>, backend: CountingBackend) -> Maintainer {
    Maintainer::builder()
        .min_support(MinSupport::percent(1))
        .min_confidence(MinConfidence::percent(60))
        .backend(backend)
        .build(history)
        .unwrap()
}

#[test]
fn concurrent_staging_commits_bit_identical_to_serial() {
    let (history, batches) = workload(0xc0ffee);
    for backend in [CountingBackend::HashTree, CountingBackend::Vertical] {
        // Reference: the same batches staged serially, one commit.
        let mut serial = build(history.clone(), backend);
        for batch in &batches {
            serial
                .stage(UpdateBatch::insert_only(batch.clone()))
                .unwrap();
        }
        let serial_report = serial.commit().unwrap();

        for producers in [2usize, 8] {
            let mut concurrent = build(history.clone(), backend);
            let handle = concurrent.stage_handle();
            std::thread::scope(|scope| {
                for worker in 0..producers {
                    let (handle, batches) = (&handle, &batches);
                    scope.spawn(move || {
                        // Round-robin split of the batch stream.
                        for batch in batches.iter().skip(worker).step_by(producers) {
                            handle
                                .stage(UpdateBatch::insert_only(batch.clone()))
                                .unwrap();
                        }
                    });
                }
            });
            let report = concurrent.commit().unwrap();

            assert_eq!(
                report.num_transactions, serial_report.num_transactions,
                "{backend:?}/{producers} producers: transaction counts diverged"
            );
            assert_eq!(
                report.inserted_tids.len(),
                serial_report.inserted_tids.len()
            );
            // Bit-identical mined state: same itemsets, same supports,
            // same rules (RuleSet equality covers confidences).
            assert!(
                concurrent
                    .large_itemsets()
                    .same_itemsets(serial.large_itemsets()),
                "{backend:?}/{producers} producers: {:?}",
                concurrent.large_itemsets().diff(serial.large_itemsets())
            );
            for (itemset, support) in serial.large_itemsets().iter() {
                assert_eq!(
                    concurrent.large_itemsets().support(itemset),
                    Some(support),
                    "{backend:?}/{producers} producers: support of {itemset:?} diverged"
                );
            }
            assert_eq!(
                concurrent.rules(),
                serial.rules(),
                "{backend:?}/{producers} producers: rule sets diverged"
            );
            concurrent.verify_consistency().unwrap();
        }
    }
}

#[test]
fn concurrent_staging_with_deletes_claims_each_tid_once() {
    let (history, batches) = workload(0xdead);
    let mut m = build(history, CountingBackend::HashTree);
    let victims: Vec<_> = m.store().iter().take(64).map(|(tid, _)| tid).collect();
    let handle = m.stage_handle();
    // 8 threads race: everyone tries to delete every victim, and stages
    // one insert batch of its own. Exactly one claim per tid may win.
    let claimed = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for worker in 0..8usize {
            let (handle, victims, claimed, batches) = (&handle, &victims, &claimed, &batches);
            scope.spawn(move || {
                for &tid in victims {
                    if handle.stage(UpdateBatch::delete_only(vec![tid])).is_ok() {
                        claimed.lock().unwrap().push(tid);
                    }
                }
                handle
                    .stage(UpdateBatch::insert_only(batches[worker].clone()))
                    .unwrap();
            });
        }
    });
    let mut claimed = claimed.into_inner().unwrap();
    claimed.sort();
    let mut unique = claimed.clone();
    unique.dedup();
    assert_eq!(claimed.len(), victims.len(), "every victim claimed once");
    assert_eq!(claimed, unique, "no tid claimed twice");

    let report = m.commit().unwrap();
    assert_eq!(report.algorithm, "fup2");
    assert_eq!(
        report.num_transactions,
        1_500 - 64 + 8 * 60,
        "all deletes and all inserts applied"
    );
    m.verify_consistency().unwrap();
}

#[test]
fn service_under_concurrent_producers_and_readers_matches_serial() {
    let (history, batches) = workload(0x5e21);

    // Serial reference: everything in one session, one commit.
    let mut serial = build(history.clone(), CountingBackend::Auto);
    for batch in &batches {
        serial
            .stage(UpdateBatch::insert_only(batch.clone()))
            .unwrap();
    }
    serial.commit().unwrap();

    // Service: 8 producers + 2 snapshot readers while the background
    // committer commits on a pending trigger (so several rounds happen
    // mid-stream), then a final flush.
    let service = MaintainerService::launch(
        build(history, CountingBackend::Auto),
        CommitPolicy::manual()
            .every_ops(150)
            .with_poll_interval(std::time::Duration::from_millis(1)),
    )
    .unwrap();
    let stop_readers = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let (service, stop_readers) = (&service, &stop_readers);
            scope.spawn(move || {
                let mut last_version = 0;
                let mut last_len = 0;
                while !stop_readers.load(Ordering::Relaxed) {
                    let snap = service.snapshot();
                    assert!(snap.version() >= last_version, "versions must not rewind");
                    assert!(
                        snap.num_transactions() >= last_len,
                        "insert-only stream: the database only grows"
                    );
                    // The snapshot is internally consistent mid-commit.
                    for rule in snap.top_k_by_confidence(3) {
                        assert!(snap.support_of(&rule.antecedent).is_some());
                    }
                    last_version = snap.version();
                    last_len = snap.num_transactions();
                }
            });
        }
        // Producers run in a nested scope so the readers (outer scope)
        // observe the flush too before being released.
        std::thread::scope(|producers| {
            for worker in 0..8usize {
                let (service, batches) = (&service, &batches);
                producers.spawn(move || {
                    for batch in batches.iter().skip(worker).step_by(8) {
                        service
                            .stage(UpdateBatch::insert_only(batch.clone()))
                            .unwrap();
                    }
                });
            }
        });
        service.flush().unwrap();
        stop_readers.store(true, Ordering::Relaxed);
    });

    let (maintainer, metrics) = service.shutdown();
    assert_eq!(
        metrics.staged_inserts,
        batches.iter().map(|b| b.len() as u64).sum::<u64>()
    );
    assert_eq!(metrics.committed_inserts, metrics.staged_inserts);
    assert_eq!(metrics.dropped_rounds, 0);
    assert!(metrics.committed_rounds >= 1);

    // Final state is bit-identical to the serial session, regardless of
    // how the stream was partitioned into rounds.
    assert_eq!(maintainer.len(), serial.len());
    assert!(
        maintainer
            .large_itemsets()
            .same_itemsets(serial.large_itemsets()),
        "{:?}",
        maintainer.large_itemsets().diff(serial.large_itemsets())
    );
    for (itemset, support) in serial.large_itemsets().iter() {
        assert_eq!(maintainer.large_itemsets().support(itemset), Some(support));
    }
    assert_eq!(maintainer.rules(), serial.rules());
    maintainer.verify_consistency().unwrap();
}

// --------------------- the bounded pipeline equivalence property ------

/// A random transaction over a small item alphabet (1–6 items of 0..12).
fn arb_transaction() -> impl Strategy<Value = Transaction> {
    proptest::collection::vec(0u32..12, 1..6).prop_map(Transaction::from_items)
}

fn arb_backend() -> impl Strategy<Value = CountingBackend> {
    (0usize..3).prop_map(|i| {
        [
            CountingBackend::HashTree,
            CountingBackend::Vertical,
            CountingBackend::Auto,
        ][i]
    })
}

fn arb_producers() -> impl Strategy<Value = usize> {
    (0usize..3).prop_map(|i| [1usize, 2, 8][i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite: a bursty arrival schedule pushed through the *bounded*
    /// pipeline — a small staging-capacity gate with blocking producers,
    /// chunked commit rounds, and (when the policy crosses the §4.5
    /// break-even) the forced re-mine routing — commits itemsets and
    /// rules bit-identical to an unbounded serial session staging the
    /// same batches, across backends × producer counts {1, 2, 8}.
    #[test]
    fn bursty_bounded_pipeline_matches_unbounded_serial(
        history in proptest::collection::vec(arb_transaction(), 0..40),
        insert_bursts in proptest::collection::vec(
            proptest::collection::vec(arb_transaction(), 0..5), 4..10),
        delete_seed in proptest::collection::vec(any::<prop::sample::Index>(), 0..6),
        round_cap in 1u64..6,
        backend in arb_backend(),
        producers in arb_producers(),
        force_remine in any::<bool>(),
    ) {
        // A tiny break-even ratio makes nearly every backlog cross the
        // re-mine threshold, exercising the whole-backlog routing; the
        // default policy keeps every round on the capped FUP path.
        let policy = if force_remine {
            UpdatePolicy::RemineOverRatio(0.05)
        } else {
            UpdatePolicy::AlwaysIncremental
        };
        let build = |history: Vec<Transaction>| {
            Maintainer::builder()
                .min_support(MinSupport::percent(5))
                .min_confidence(MinConfidence::percent(60))
                .backend(backend)
                .policy(policy)
                .build(history)
                .unwrap()
        };

        // Distinct delete victims from the history, dealt round-robin
        // across the bursts so concurrent claims never collide.
        let mut serial = build(history.clone());
        let tids: Vec<Tid> = serial.store().iter().map(|(tid, _)| tid).collect();
        let mut victims: Vec<Tid> = delete_seed
            .iter()
            .filter(|_| !tids.is_empty())
            .map(|ix| tids[ix.index(tids.len())])
            .collect();
        victims.sort();
        victims.dedup();
        let mut batches: Vec<UpdateBatch> = insert_bursts
            .into_iter()
            .map(|inserts| UpdateBatch { inserts, deletes: vec![] })
            .collect();
        let num_batches = batches.len();
        for (i, tid) in victims.into_iter().enumerate() {
            batches[i % num_batches].deletes.push(tid);
        }

        // Unbounded serial reference: stage everything, one commit.
        for batch in &batches {
            serial.stage(batch.clone()).unwrap();
        }
        serial.commit().unwrap();

        // The bounded pipeline: the capacity gate blocks producers, the
        // pending trigger keeps the committer draining in capped rounds,
        // and the final flush covers the stragglers.
        let service = MaintainerService::launch(
            build(history),
            CommitPolicy::manual()
                .every_ops(4)
                .ops_per_round(round_cap)
                .staging_capacity(16)
                .with_poll_interval(std::time::Duration::from_millis(1)),
        )
        .unwrap();
        std::thread::scope(|scope| {
            for worker in 0..producers {
                let (service, batches) = (&service, &batches);
                scope.spawn(move || {
                    for batch in batches.iter().skip(worker).step_by(producers) {
                        service.stage(batch.clone()).unwrap();
                    }
                });
            }
        });
        service.flush().unwrap();
        let (maintainer, metrics) = service.shutdown();
        prop_assert_eq!(metrics.dropped_rounds, 0);
        if !force_remine {
            // Batches are atomic, so one batch larger than the cap forms
            // its own round; the bound is max(cap, largest batch).
            let largest_batch = batches
                .iter()
                .map(|b| (b.inserts.len() + b.deletes.len()) as u64)
                .max()
                .unwrap_or(0);
            prop_assert!(
                metrics.max_round_ops <= round_cap.max(largest_batch),
                "incremental rounds must respect the {} op cap (saw {})",
                round_cap,
                metrics.max_round_ops
            );
        }

        prop_assert_eq!(maintainer.len(), serial.len());
        prop_assert!(
            maintainer
                .large_itemsets()
                .same_itemsets(serial.large_itemsets()),
            "{:?}",
            maintainer.large_itemsets().diff(serial.large_itemsets())
        );
        for (itemset, support) in serial.large_itemsets().iter() {
            prop_assert_eq!(maintainer.large_itemsets().support(itemset), Some(support));
        }
        prop_assert_eq!(maintainer.rules(), serial.rules());
        maintainer.verify_consistency().unwrap();
    }
}

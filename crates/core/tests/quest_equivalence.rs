//! Equivalence and effectiveness on the paper's own workload family:
//! scaled-down `T10.I4` databases from the Quest generator.

use fup_core::{Fup, FupConfig};
use fup_datagen::corpus;
use fup_datagen::generate_split;
use fup_mining::{Apriori, Dhp, MinSupport};
use fup_tidb::source::ChainSource;

/// One scaled workload: T10.I4 with D = 2000, d = 200.
fn workload(seed: u64) -> fup_datagen::DbAndIncrement {
    let params = corpus::scaled(corpus::t10_i4_d100_d1(), 50).with_seed(seed);
    assert_eq!(params.num_transactions, 2_000);
    // Scaled d1 gives d = 20; widen to 200 for a meatier increment.
    generate_split(&params.with_increment(200))
}

#[test]
fn fup_matches_apriori_and_dhp_on_quest_data() {
    let data = workload(0xabcd);
    for bp in [200u64, 100, 75] {
        let minsup = MinSupport::basis_points(bp);
        let baseline = Apriori::new().run(&data.db, minsup).large;
        let out = Fup::new()
            .update(&data.db, &baseline, &data.increment, minsup)
            .unwrap();
        let whole = ChainSource::new(&data.db, &data.increment);
        let apriori = Apriori::new().run(&whole, minsup).large;
        assert!(
            out.large.same_itemsets(&apriori),
            "minsup {bp}bp vs Apriori: {:?}",
            out.large.diff(&apriori)
        );
        let dhp = Dhp::new().run(&whole, minsup).large;
        assert!(
            out.large.same_itemsets(&dhp),
            "minsup {bp}bp vs DHP: {:?}",
            out.large.diff(&dhp)
        );
        assert!(
            out.large.len() > 10,
            "workload too sparse to be meaningful: {} itemsets",
            out.large.len()
        );
    }
}

#[test]
fn fup_candidate_pool_is_much_smaller_than_baselines() {
    // The Figure 3 phenomenon, asserted qualitatively: candidates checked
    // against DB by FUP are a small fraction of the baselines'.
    let data = workload(0x1357);
    let minsup = MinSupport::percent(1);
    let baseline = Apriori::new().run(&data.db, minsup).large;
    let out = Fup::new()
        .update(&data.db, &baseline, &data.increment, minsup)
        .unwrap();
    let whole = ChainSource::new(&data.db, &data.increment);
    let apriori = Apriori::new().run(&whole, minsup);
    let fup_checked = out.stats.total_candidates_checked();
    let apriori_checked = apriori.stats.total_candidates_checked();
    assert!(
        fup_checked * 4 < apriori_checked,
        "expected ≥4× candidate reduction, got FUP {fup_checked} vs Apriori {apriori_checked}"
    );
}

#[test]
fn optimisation_configs_agree_on_quest_data() {
    let data = workload(0x2468);
    let minsup = MinSupport::percent(1);
    let baseline = Apriori::new().run(&data.db, minsup).large;
    let full = Fup::with_config(FupConfig::full())
        .update(&data.db, &baseline, &data.increment, minsup)
        .unwrap();
    let bare = Fup::with_config(FupConfig::bare())
        .update(&data.db, &baseline, &data.increment, minsup)
        .unwrap();
    assert!(
        full.large.same_itemsets(&bare.large),
        "{:?}",
        full.large.diff(&bare.large)
    );
    // The DHP hash filter must thin the size-2 candidates (or at worst
    // leave them equal).
    let full2 = full.detail.iter().find(|d| d.k == 2);
    if let Some(d2) = full2 {
        assert!(d2.candidates_after_hash <= d2.candidates_generated);
    }
}

//! Error type for incremental maintenance.

use std::fmt;

/// Errors produced by FUP/FUP2 and the maintenance layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The supplied `LargeItemsets` baseline was mined over a database of a
    /// different size than the `DB` being updated — its support counts
    /// cannot be reused.
    StaleBaseline {
        /// `D` recorded in the baseline.
        baseline: u64,
        /// Number of transactions in the database handed to FUP.
        database: u64,
    },
    /// An update referenced transactions that do not exist (wraps the
    /// substrate error).
    Store(fup_tidb::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::StaleBaseline { baseline, database } => write!(
                f,
                "baseline was mined over {baseline} transactions but the database holds {database}; \
                 re-mine or replay the missing updates"
            ),
            Error::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fup_tidb::Error> for Error {
    fn from(e: fup_tidb::Error) -> Self {
        Error::Store(e)
    }
}

/// Result alias for maintenance operations.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = Error::StaleBaseline {
            baseline: 100,
            database: 120,
        };
        let msg = e.to_string();
        assert!(msg.contains("100"));
        assert!(msg.contains("120"));
        assert!(msg.contains("re-mine"));
    }

    #[test]
    fn store_errors_convert_and_chain() {
        let inner = fup_tidb::Error::UnknownTransaction(fup_tidb::Tid(7));
        let e: Error = inner.clone().into();
        assert_eq!(e, Error::Store(inner));
        assert!(std::error::Error::source(&e).is_some());
    }
}

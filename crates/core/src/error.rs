//! Error types for incremental maintenance.

use std::fmt;

/// A configuration the [`MaintainerBuilder`](crate::MaintainerBuilder)
/// (or [`Maintainer::set_policy`](crate::Maintainer::set_policy)) refuses
/// to accept — each variant is a combination that would previously
/// surface as a runtime panic, a silent misconfiguration, or a
/// consistency violation several rounds later.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BuildError {
    /// No minimum support threshold was supplied.
    MissingMinSupport,
    /// No minimum confidence threshold was supplied.
    MissingMinConfidence,
    /// An explicit worker-thread count of zero was requested. (Omit the
    /// call to let the engine resolve the machine's parallelism instead.)
    ZeroThreads,
    /// A chunk size of zero was requested; scans need at least one
    /// transaction per chunk.
    ZeroChunkSize,
    /// DHP pair hashing was enabled with zero hash buckets.
    ZeroHashBuckets,
    /// `max_k` was capped at zero, which would mine nothing at all.
    ZeroMaxK,
    /// A [`RemineOverRatio`](crate::UpdatePolicy::RemineOverRatio) policy
    /// carried a negative or NaN ratio.
    InvalidRemineRatio(f64),
    /// A policy that can route updates to a full re-mine was combined
    /// with a `max_k` cap: the Apriori re-mine ignores the cap, so the
    /// maintained state would silently gain levels the incremental rounds
    /// never track.
    RemineIgnoresMaxK,
    /// The updater was pinned to plain FUP (insertions only) while the
    /// session accepts deletions. Pin [`Updater::Fup2`](crate::Updater)
    /// (or leave [`Updater::Auto`](crate::Updater)), or declare the
    /// workload insert-only with `deletions(false)`.
    DeletionsWithoutFup2,
    /// A [`DurabilityPolicy`](crate::DurabilityPolicy) asked for a
    /// checkpoint every zero rounds, which would checkpoint before any
    /// round could run.
    ZeroCheckpointInterval,
    /// A [`DurabilityPolicy`](crate::DurabilityPolicy) asked to retain
    /// zero checkpoints, leaving recovery nothing to start from.
    ZeroRetainedCheckpoints,
    /// A [`DurabilityPolicy`](crate::DurabilityPolicy) asked to group
    /// WAL fsyncs in batches of zero records, which would never sync.
    ZeroFlushOps,
    /// A [`RetryPolicy`](crate::RetryPolicy) allowed zero attempts, which
    /// could never even try the operation once.
    ZeroRetryAttempts,
    /// A [`RetryPolicy`](crate::RetryPolicy) base backoff exceeds its
    /// maximum backoff — the cap would *shorten* the first delay, which
    /// is almost certainly a misconfiguration.
    InvertedRetryBackoff,
    /// A [`ShardSpec`](fup_tidb::ShardSpec) whose routing function is not
    /// total — zero shards, a zero stripe, or an explicit range list that
    /// overlaps, gaps, starts past tid 0, or ends bounded. Carries the
    /// substrate's diagnosis of the exact defect.
    InvalidShardSpec(fup_tidb::SpecError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::MissingMinSupport => write!(f, "no minimum support configured"),
            BuildError::MissingMinConfidence => write!(f, "no minimum confidence configured"),
            BuildError::ZeroThreads => write!(
                f,
                "explicit thread count of zero; omit threads() to use the machine's parallelism"
            ),
            BuildError::ZeroChunkSize => write!(f, "chunk size must be at least 1"),
            BuildError::ZeroHashBuckets => {
                write!(f, "DHP pair hashing enabled with zero hash buckets")
            }
            BuildError::ZeroMaxK => write!(f, "max_k of 0 would mine nothing"),
            BuildError::InvalidRemineRatio(r) => {
                write!(f, "re-mine ratio {r} is not a non-negative number")
            }
            BuildError::RemineIgnoresMaxK => write!(
                f,
                "a re-mining policy cannot be combined with a max_k cap: the full re-mine \
                 ignores the cap and the maintained state would diverge"
            ),
            BuildError::DeletionsWithoutFup2 => write!(
                f,
                "updater pinned to FUP (insertions only) but the session accepts deletions; \
                 use Updater::Auto/Fup2 or declare deletions(false)"
            ),
            BuildError::ZeroCheckpointInterval => {
                write!(f, "a checkpoint interval of zero rounds is not runnable")
            }
            BuildError::ZeroRetainedCheckpoints => write!(
                f,
                "retaining zero checkpoints would leave recovery nothing to start from"
            ),
            BuildError::ZeroFlushOps => write!(
                f,
                "a group-commit batch of zero records would never issue a sync barrier"
            ),
            BuildError::ZeroRetryAttempts => write!(
                f,
                "a retry policy must allow at least one attempt; use RetryPolicy::none() \
                 to disable retries"
            ),
            BuildError::InvertedRetryBackoff => write!(
                f,
                "retry base backoff exceeds the maximum backoff; the cap would shorten \
                 the first delay"
            ),
            BuildError::InvalidShardSpec(e) => write!(f, "invalid shard spec: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Errors produced by FUP/FUP2 and the maintenance layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The supplied `LargeItemsets` baseline was mined over a database of a
    /// different size than the `DB` being updated — its support counts
    /// cannot be reused.
    StaleBaseline {
        /// `D` recorded in the baseline.
        baseline: u64,
        /// Number of transactions in the database handed to FUP.
        database: u64,
    },
    /// An update referenced transactions that do not exist (wraps the
    /// substrate error).
    Store(fup_tidb::Error),
    /// A configuration rejected by the builder or by
    /// [`set_policy`](crate::Maintainer::set_policy).
    Config(BuildError),
    /// A batch with deletions was staged on a session built with
    /// `deletions(false)` (an insert-only workload declaration).
    DeletionsDisabled,
    /// The maintained itemsets disagree with a from-scratch re-mine —
    /// returned by [`verify_consistency`](crate::Maintainer::verify_consistency)
    /// with one human-readable line per divergence.
    Inconsistent {
        /// One line per itemset whose membership or support diverged.
        differences: Vec<String>,
    },
    /// Recovery from durable storage could not proceed: no usable
    /// checkpoint, a log inconsistent with the checkpoint, or a
    /// configuration that does not match the checkpointed session.
    Recovery {
        /// Human-readable description of what blocked recovery.
        reason: String,
    },
    /// A durability-only operation (an explicit checkpoint) was invoked
    /// on a session built without durable storage.
    NotDurable,
    /// The durable log is in the *degraded* state: a transient storage
    /// fault survived its retry budget, so new work cannot be made
    /// durable right now. Unlike a poisoned log this is recoverable —
    /// the background probe (or an explicit
    /// [`try_heal`](crate::Maintainer::try_heal)) re-checks storage and
    /// resumes durability once it answers again. Already-acknowledged
    /// commits and staged records are unaffected; snapshots keep
    /// serving.
    DurabilityDegraded,
    /// A bounded retry loop (see
    /// [`StageHandle::stage_with_retry`](crate::StageHandle::stage_with_retry))
    /// exhausted its attempts. Carries the final error so callers can
    /// still distinguish backpressure from degradation when deciding to
    /// shed.
    RetriesExhausted {
        /// Attempts made before giving up (at least 1).
        attempts: u32,
        /// The error the final attempt failed with.
        last: Box<Error>,
    },
    /// A cluster shard worker is unreachable (killed, crashed, or
    /// refusing the round). Commit rounds cannot run until it rejoins —
    /// staged work stays in the coordinator's bounded backlog and
    /// published snapshots keep serving.
    WorkerDown {
        /// The unreachable shard.
        shard: usize,
        /// What the worker (or its transport) last reported.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::StaleBaseline { baseline, database } => write!(
                f,
                "baseline was mined over {baseline} transactions but the database holds {database}; \
                 re-mine or replay the missing updates"
            ),
            Error::Store(e) => write!(f, "store error: {e}"),
            Error::Config(e) => write!(f, "configuration error: {e}"),
            Error::DeletionsDisabled => write!(
                f,
                "this session was built for an insert-only workload (deletions(false)); \
                 rebuild the maintainer to accept deletions"
            ),
            Error::Inconsistent { differences } => write!(
                f,
                "maintained state diverges from a full re-mine in {} place(s): {}",
                differences.len(),
                differences.join("; ")
            ),
            Error::Recovery { reason } => write!(f, "recovery failed: {reason}"),
            Error::NotDurable => write!(
                f,
                "this session has no durable storage; build it with build_durable() or recover()"
            ),
            Error::DurabilityDegraded => write!(
                f,
                "durable storage is degraded after exhausting transient-fault retries; \
                 staged work is refused until a heal probe restores durability"
            ),
            Error::RetriesExhausted { attempts, last } => write!(
                f,
                "gave up after {attempts} attempt(s); last error: {last}"
            ),
            Error::WorkerDown { shard, reason } => write!(
                f,
                "cluster shard worker {shard} is unreachable ({reason}); \
                 staged work is held until it rejoins"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Store(e) => Some(e),
            Error::Config(e) => Some(e),
            Error::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<fup_tidb::Error> for Error {
    fn from(e: fup_tidb::Error) -> Self {
        Error::Store(e)
    }
}

impl From<BuildError> for Error {
    fn from(e: BuildError) -> Self {
        Error::Config(e)
    }
}

/// Result alias for maintenance operations.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = Error::StaleBaseline {
            baseline: 100,
            database: 120,
        };
        let msg = e.to_string();
        assert!(msg.contains("100"));
        assert!(msg.contains("120"));
        assert!(msg.contains("re-mine"));
    }

    #[test]
    fn store_errors_convert_and_chain() {
        let inner = fup_tidb::Error::UnknownTransaction(fup_tidb::Tid(7));
        let e: Error = inner.clone().into();
        assert_eq!(e, Error::Store(inner));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn build_errors_convert_and_chain() {
        let e: Error = BuildError::ZeroThreads.into();
        assert_eq!(e, Error::Config(BuildError::ZeroThreads));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("thread"));
    }

    #[test]
    fn inconsistency_lists_differences() {
        let e = Error::Inconsistent {
            differences: vec!["missing {1,2}".into(), "support of {3} drifted".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("2 place(s)"));
        assert!(msg.contains("missing {1,2}"));
    }

    #[test]
    fn build_error_messages_name_the_fix() {
        assert!(BuildError::DeletionsWithoutFup2
            .to_string()
            .contains("Updater::Auto"));
        assert!(BuildError::InvalidRemineRatio(-1.0)
            .to_string()
            .contains("-1"));
        assert!(BuildError::RemineIgnoresMaxK.to_string().contains("max_k"));
        assert!(BuildError::ZeroRetryAttempts
            .to_string()
            .contains("RetryPolicy::none"));
        assert!(BuildError::InvertedRetryBackoff
            .to_string()
            .contains("backoff"));
        assert!(BuildError::InvalidShardSpec(fup_tidb::SpecError::NoShards)
            .to_string()
            .contains("zero shards"));
    }

    #[test]
    fn degraded_and_retry_errors_explain_themselves() {
        let msg = Error::DurabilityDegraded.to_string();
        assert!(msg.contains("degraded"));
        assert!(msg.contains("heal"));

        let e = Error::RetriesExhausted {
            attempts: 5,
            last: Box::new(Error::DurabilityDegraded),
        };
        assert!(e.to_string().contains("5 attempt(s)"));
        assert!(e.to_string().contains("degraded"));
        assert!(std::error::Error::source(&e).is_some());
    }
}

//! FUP2 — the general insert/delete maintenance algorithm.
//!
//! §5 of the paper: "We have also investigated the cases of deletion and
//! modification of a transaction database." FUP2 generalises FUP to an
//! update `DB' = (DB − db⁻) ∪ db⁺` (a modification is a delete plus an
//! insert):
//!
//! * For an **old** large itemset `X ∈ L_k`, the new support is exact
//!   arithmetic over the small parts alone:
//!   `X.support' = X.support_D − X.support_{db⁻} + X.support_{db⁺}` —
//!   no scan of the remaining database `DB⁻ = DB − db⁻` is needed.
//! * For a **candidate** `X ∉ L_k`, only the bound
//!   `X.support_D ≤ ⌈s×D⌉ − 1` is known; `X` can be large in `DB'` only if
//!   `(⌈s×D⌉ − 1) − X.support_{db⁻} + X.support_{db⁺} ≥ ⌈s×(D−d⁻+d⁺)⌉`.
//!   Candidates failing this test are pruned before the `DB⁻` scan — the
//!   FUP2 analogue of Lemma 2/5. (With `db⁻ = ∅` the test reduces exactly
//!   to FUP's `support_{db} ≥ s×d` up to the known-small slack, and FUP's
//!   stronger form is applied in that case.)
//!
//! Trimming: the insert side and `DB⁻` are trimmed as in FUP; the *delete*
//! side is never trimmed — undercounting `support_{db⁻}` would inflate
//! `support'` and could fabricate winners, so `db⁻` is always scanned
//! whole (it is small by assumption).

use crate::config::FupConfig;
use crate::error::{Error, Result};
use crate::fup::{FupOutcome, FupPassDetail};
use crate::reduce;
use crate::vindex::{IndexSlot, SlotProvider, VerticalProvider};
use fup_mining::engine::{self, count_items_and_pairs, pair_bucket, ChunkedCollector};
use fup_mining::gen::apriori_gen_with;
use fup_mining::vertical::{PassProfile, ResolvedBackend};
use fup_mining::{
    HashTree, Itemset, ItemsetTable, LargeItemsets, MinSupport, MiningStats, PassStats,
};
use fup_tidb::{ItemId, TransactionDb, TransactionSource};
use std::collections::HashSet;
use std::time::Instant;

/// The FUP2 incremental updater (insertions + deletions).
#[derive(Debug, Clone, Default)]
pub struct Fup2 {
    config: FupConfig,
}

impl Fup2 {
    /// Creates an updater with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an updater with an explicit configuration.
    pub fn with_config(config: FupConfig) -> Self {
        Fup2 { config }
    }

    /// Computes `L'`, the large itemsets of `DB' = (DB − db⁻) ∪ db⁺`.
    ///
    /// * `remainder` — `DB⁻ = DB − db⁻` (e.g. a
    ///   [`SegmentedDb`](fup_tidb::SegmentedDb) with a staged update),
    /// * `old` — the large itemsets of the *original* `DB` (including the
    ///   deleted transactions) with support counts,
    /// * `deleted` — `db⁻`, the removed transactions,
    /// * `inserted` — `db⁺`, the new transactions,
    /// * `minsup` — the unchanged minimum support threshold.
    pub fn update(
        &self,
        remainder: &dyn TransactionSource,
        old: &LargeItemsets,
        deleted: &dyn TransactionSource,
        inserted: &dyn TransactionSource,
        minsup: MinSupport,
    ) -> Result<FupOutcome> {
        self.update_with_index(
            remainder,
            old,
            deleted,
            inserted,
            minsup,
            &mut IndexSlot::new(),
        )
    }

    /// [`update`](Self::update) with a persistent [`IndexSlot`]: an index
    /// held from a previous round is reused (extended with `inserted`'s
    /// delta scan) when it covers `remainder` — which is only the case for
    /// insert-only updates, since deletions shrink and reorder the
    /// remainder; any mismatch rebuilds. The round's index is stashed back
    /// on success. [`Fup2::update`] passes a throwaway slot and reproduces
    /// the historical build-per-round behaviour exactly.
    pub fn update_with_index(
        &self,
        remainder: &dyn TransactionSource,
        old: &LargeItemsets,
        deleted: &dyn TransactionSource,
        inserted: &dyn TransactionSource,
        minsup: MinSupport,
        slot: &mut IndexSlot,
    ) -> Result<FupOutcome> {
        let boundary = remainder.num_transactions();
        let mut provider = SlotProvider::new(slot, remainder, inserted, boundary);
        self.update_with_provider(remainder, old, deleted, inserted, minsup, &mut provider)
    }

    /// [`update_with_index`](Self::update_with_index) generalised over the
    /// source of vertical splits, exactly as
    /// [`Fup::update_with_provider`](crate::fup::Fup): the flat session
    /// passes a [`SlotProvider`] over `DB⁻`/`db⁺`, the sharded session a
    /// [`ShardProvider`](crate::shard::ShardProvider) whose per-shard
    /// splits merge by summation. The delete side is never indexed — it
    /// is counted whole either way.
    pub(crate) fn update_with_provider(
        &self,
        remainder: &dyn TransactionSource,
        old: &LargeItemsets,
        deleted: &dyn TransactionSource,
        inserted: &dyn TransactionSource,
        minsup: MinSupport,
        provider: &mut dyn VerticalProvider,
    ) -> Result<FupOutcome> {
        let start = Instant::now();
        let d_rem = remainder.num_transactions();
        let d_minus = deleted.num_transactions();
        let d_plus = inserted.num_transactions();
        let d_orig = d_rem + d_minus;
        if old.num_transactions() != d_orig {
            return Err(Error::StaleBaseline {
                baseline: old.num_transactions(),
                database: d_orig,
            });
        }
        let n = d_rem + d_plus;

        let mut stats = MiningStats::new("fup2");
        if d_minus == 0 && d_plus == 0 {
            stats.elapsed = start.elapsed();
            return Ok(FupOutcome {
                large: old.clone(),
                stats,
                detail: Vec::new(),
            });
        }
        if n == 0 {
            // Everything was deleted; no itemset has support.
            stats.elapsed = start.elapsed();
            return Ok(FupOutcome {
                large: LargeItemsets::new(0),
                stats,
                detail: Vec::new(),
            });
        }

        let mut result = LargeItemsets::new(n);
        let mut detail = Vec::new();

        // The candidate-pruning bound: X ∉ L_k means
        // support_D(X) ≤ old_cap = ⌈s×D⌉ − 1.
        let old_cap = minsup.required_count(d_orig).saturating_sub(1);
        let survives = |sup_minus: u64, sup_plus: u64| -> bool {
            // (old_cap − sup_minus + sup_plus ≥ required(n)), in i128 to
            // dodge underflow.
            let bound = i128::from(old_cap) - i128::from(sup_minus) + i128::from(sup_plus);
            bound >= i128::from(minsup.required_count(n))
        };

        // ------------------------- Iteration 1 -------------------------
        // Adaptive bucket count, as in `Fup`: ~one bucket per expected pair
        // occurrence in `db⁺`, capped by the configuration.
        let nbuckets_plus = if self.config.dhp_hash && d_plus > 0 {
            (d_plus.saturating_mul(64))
                .next_power_of_two()
                .clamp(1024, self.config.hash_buckets.max(1024) as u64) as usize
        } else {
            0
        };
        let (plus_counts, pair_buckets) =
            count_items_and_pairs(inserted, nbuckets_plus, &self.config.engine);
        let (minus_counts, _) = count_items_and_pairs(deleted, 0, &self.config.engine);
        let at = |v: &Vec<u64>, item: ItemId| v.get(item.index()).copied().unwrap_or(0);

        let mut losers_prev: HashSet<Itemset> = HashSet::new();
        let mut winners_from_old = 0u64;
        for (x, sup_d) in old.level(1) {
            let item = x.items()[0];
            let sup_new = sup_d + at(&plus_counts, item) - at(&minus_counts, item);
            if minsup.is_large(sup_new, n) {
                result.insert(x.clone(), sup_new);
                winners_from_old += 1;
            } else {
                losers_prev.insert(x.clone());
            }
        }

        // Candidate items: anything not in L₁ may emerge (deletions can
        // promote items that never occur in db⁺), so all items are counted
        // in one dense pass over DB⁻ and decided afterwards. The
        // `survives` bound still prunes the *reporting*, and for the
        // insert-only case FUP's stronger Lemma-2 check applies.
        let rem_counts = if let Some(counts) = provider.count_base_dense(&self.config.engine) {
            // A remote provider histogrammed DB⁻ where its rows live;
            // per-shard histograms sum to exactly this scan's output.
            counts
        } else {
            engine::merge_dense(engine::scan_fold(
                remainder,
                &self.config.engine,
                Vec::new,
                |counts: &mut Vec<u64>, _chunk, t| {
                    for &item in t {
                        let i = item.index();
                        if i >= counts.len() {
                            counts.resize(i + 1, 0);
                        }
                        counts[i] += 1;
                    }
                },
            ))
        };
        let max_len = rem_counts
            .len()
            .max(plus_counts.len())
            .max(minus_counts.len());
        let mut winners_from_new1 = 0u64;
        let mut generated1 = 0u64;
        let mut checked1 = 0u64;
        for i in 0..max_len {
            let item = ItemId(i as u32);
            let x = Itemset::single(item);
            if old.contains(&x) {
                continue;
            }
            let plus = at(&plus_counts, item);
            let minus = at(&minus_counts, item);
            let rem = rem_counts.get(i).copied().unwrap_or(0);
            if plus == 0 && minus == 0 && rem == 0 {
                continue;
            }
            generated1 += 1;
            if !survives(minus, plus) {
                continue;
            }
            checked1 += 1;
            let sup_new = rem + plus;
            if minsup.is_large(sup_new, n) {
                result.insert(x, sup_new);
                winners_from_new1 += 1;
            }
        }
        stats.passes.push(PassStats {
            k: 1,
            candidates_generated: generated1,
            candidates_checked: checked1,
            large_found: winners_from_old + winners_from_new1,
        });
        detail.push(FupPassDetail {
            k: 1,
            old_large: old.len_at(1) as u64,
            lemma3_losers: 0,
            winners_from_old,
            candidates_generated: generated1,
            candidates_after_hash: generated1,
            candidates_checked: checked1,
            winners_from_new: winners_from_new1,
        });

        // --------------------- Iterations k ≥ 2 ------------------------
        // Backend selection input: raw average transaction length of
        // whichever delta side has data stands in for the frequent-item
        // residue (an overestimate on filler-heavy data, as in `Fup`; the
        // index itself is filtered to old L₁ ∪ new L₁).
        let residue = if d_plus > 0 {
            plus_counts.iter().sum::<u64>() as f64 / d_plus as f64
        } else {
            minus_counts.iter().sum::<u64>() as f64 / d_minus.max(1) as f64
        };
        // The vertical index (or per-shard indexes) covering DB⁻ ∪ db⁺
        // (the updated database) is built lazily by the provider: the
        // remainder's tid-lists are materialised once and the insert
        // side's delta scan only extends them; one intersection split at
        // tid |DB⁻| yields (support in DB⁻, support in db⁺). The delete
        // side is never indexed — it is counted whole, as the trimming
        // rules already require.
        let nbuckets = pair_buckets.len();
        let mut plus_working: Option<TransactionDb> = None;
        let mut rem_working: Option<TransactionDb> = None;
        let mut k = 2;
        while (old.len_at(k) > 0 || result.len_at(k - 1) > 0)
            && self.config.max_k.is_none_or(|m| k <= m)
        {
            // Lemma 3 (unchanged): supersets of losers lose.
            let mut w: Vec<(Itemset, u64)> = Vec::with_capacity(old.len_at(k));
            let mut lemma3 = 0u64;
            let mut losers_k: HashSet<Itemset> = HashSet::new();
            for (x, sup) in old.level(k) {
                let lost = !losers_prev.is_empty()
                    && x.proper_subsets().any(|sub| losers_prev.contains(&sub));
                if lost {
                    lemma3 += 1;
                    losers_k.insert(x.clone());
                } else {
                    w.push((x.clone(), sup));
                }
            }

            let prev_new: Vec<Itemset> = result.level(k - 1).map(|(x, _)| x.clone()).collect();
            let mut candidates: Vec<Itemset> = apriori_gen_with(&prev_new, &self.config.engine.gen)
                .into_iter()
                .filter(|x| !old.contains(x))
                .collect();
            let generated = candidates.len() as u64;
            if k == 2 && nbuckets > 0 && d_minus == 0 {
                // Pure insertion: the db⁺ pair buckets bound support_{db⁺},
                // and FUP's Lemma-5 form applies.
                candidates.retain(|c| {
                    let b = pair_bucket(c.items()[0], c.items()[1], nbuckets);
                    minsup.is_large(pair_buckets[b], d_plus)
                });
            }
            let after_hash = candidates.len() as u64;

            if w.is_empty() && candidates.is_empty() {
                stats.passes.push(PassStats {
                    k,
                    candidates_generated: generated,
                    candidates_checked: 0,
                    large_found: 0,
                });
                detail.push(FupPassDetail {
                    k,
                    old_large: old.len_at(k) as u64,
                    lemma3_losers: lemma3,
                    winners_from_old: 0,
                    candidates_generated: generated,
                    candidates_after_hash: after_hash,
                    candidates_checked: 0,
                    winners_from_new: 0,
                });
                losers_prev = losers_k;
                k += 1;
                continue;
            }

            // Vertical path (sticky once engaged): (DB⁻, db⁺) supports
            // come from one split intersection per itemset; only the
            // small delete side still runs a counting pass. Decisions
            // mirror the scanning path exactly.
            // As in FUP: only `C` can force scans of the remaining
            // database, so backend selection weighs the candidate pool
            // alone.
            let use_vertical = provider.engaged()
                || self.config.engine.backend.resolve(&PassProfile {
                    k,
                    candidates: candidates.len(),
                    transactions: n,
                    residue,
                }) == ResolvedBackend::Vertical;
            if use_vertical {
                provider.engage(old, &result, &self.config.engine);
                // Trimmed working copies are never consulted again.
                plus_working = None;
                rem_working = None;
                let w_table = crate::vindex::sorted_w_table(&mut w, k);
                let w_len = w.len();
                // db⁻ supports for W ∪ C (in W-then-C order) via one pass
                // over the (small, never trimmed) delete side.
                let minus_k: Vec<u64> = if d_minus > 0 {
                    let mut combined: Vec<Itemset> = Vec::with_capacity(w_len + candidates.len());
                    combined.extend(w.iter().map(|(x, _)| x.clone()));
                    combined.extend(candidates.iter().cloned());
                    let mut tree = HashTree::build(combined);
                    engine::count_source_into(&mut tree, deleted, &self.config.engine);
                    tree.into_counts()
                } else {
                    vec![0; w_len + candidates.len()]
                };
                let w_splits = provider.count_split(&w_table, &self.config.engine);
                let mut winners_old_k = 0u64;
                for (i, ((x, sup_d), &(_, sup_plus))) in w.iter().zip(&w_splits).enumerate() {
                    let sup_new = sup_d + sup_plus - minus_k[i];
                    if minsup.is_large(sup_new, n) {
                        result.insert(x.clone(), sup_new);
                        winners_old_k += 1;
                    } else {
                        losers_k.insert(x.clone());
                    }
                }
                let c_table = ItemsetTable::from_sorted_itemsets(&candidates);
                let c_splits = provider.count_split(&c_table, &self.config.engine);
                let mut checked = 0u64;
                let mut winners_new_k = 0u64;
                for (i, (x, (sup_rem, sup_plus))) in
                    candidates.into_iter().zip(c_splits).enumerate()
                {
                    let sup_minus = minus_k[w_len + i];
                    // The FUP2 bound (or FUP's stronger Lemma 5 without
                    // deletions) gates winners exactly as the scanning
                    // path does, keeping `checked` and the result
                    // identical.
                    let keep = if d_minus == 0 {
                        minsup.is_large(sup_plus, d_plus)
                    } else {
                        survives(sup_minus, sup_plus)
                    };
                    if !keep {
                        continue;
                    }
                    checked += 1;
                    let sup_new = sup_rem + sup_plus;
                    if minsup.is_large(sup_new, n) {
                        result.insert(x, sup_new);
                        winners_new_k += 1;
                    }
                }
                stats.passes.push(PassStats {
                    k,
                    candidates_generated: generated,
                    candidates_checked: checked,
                    large_found: winners_old_k + winners_new_k,
                });
                detail.push(FupPassDetail {
                    k,
                    old_large: old.len_at(k) as u64,
                    lemma3_losers: lemma3,
                    winners_from_old: winners_old_k,
                    candidates_generated: generated,
                    candidates_after_hash: after_hash,
                    candidates_checked: checked,
                    winners_from_new: winners_new_k,
                });
                losers_prev = losers_k;
                k += 1;
                continue;
            }

            // Count W ∪ C over db⁺ (trimming allowed) and db⁻ (never
            // trimmed — see module docs).
            let w_len = w.len();
            let mut combined: Vec<Itemset> = Vec::with_capacity(w_len + candidates.len());
            combined.extend(w.iter().map(|(x, _)| x.clone()));
            combined.extend(candidates.iter().cloned());
            let mut tree = HashTree::build(combined);
            // Engine pass over db⁺ with optional `Reduce-db` trimming
            // (chunk-ordered, so the working copy is deterministic).
            let reduce_plus = self.config.reduce_db;
            {
                let src: &dyn TransactionSource = match &plus_working {
                    Some(wdb) => wdb,
                    None => inserted,
                };
                let view = tree.view();
                let folds = engine::scan_fold(
                    src,
                    &self.config.engine,
                    || (tree.new_scratch(), ChunkedCollector::new()),
                    |(scratch, kept), chunk, t| {
                        if reduce_plus {
                            let mut matched: Vec<usize> = Vec::new();
                            view.count_with(t, scratch, &mut |i| matched.push(i));
                            if let Some(reduced) = reduce::reduce_db_transaction(
                                t,
                                matched.iter().map(|&i| view.candidate(i)),
                                k,
                            ) {
                                kept.push(chunk, reduced);
                            }
                        } else {
                            view.count(t, scratch);
                        }
                    },
                );
                let mut collectors = Vec::with_capacity(folds.len());
                for (scratch, kept) in folds {
                    tree.absorb(scratch);
                    collectors.push(kept);
                }
                if reduce_plus {
                    plus_working = Some(TransactionDb::from_transactions(ChunkedCollector::merge(
                        collectors,
                    )));
                }
            }
            let plus_counts_k = tree.counts().to_vec();
            // The delete side is never trimmed (see module docs); counting
            // it on top of the db⁺ counts gives the combined totals.
            engine::count_source_into(&mut tree, deleted, &self.config.engine);
            let total_counts_k = tree.counts().to_vec();
            let minus_of = |i: usize| total_counts_k[i] - plus_counts_k[i];

            // Winners/losers among W, by exact delta arithmetic.
            let mut winners_old_k = 0u64;
            for (idx, (x, sup_d)) in w.iter().enumerate() {
                let sup_new = sup_d + plus_counts_k[idx] - minus_of(idx);
                if minsup.is_large(sup_new, n) {
                    result.insert(x.clone(), sup_new);
                    winners_old_k += 1;
                } else {
                    losers_k.insert(x.clone());
                }
            }

            // Prune candidates by the FUP2 bound (and FUP's stronger
            // Lemma-5 when there are no deletions).
            let mut pruned: Vec<(Itemset, u64)> = Vec::new();
            for (idx, x) in candidates.into_iter().enumerate() {
                let sup_plus = plus_counts_k[w_len + idx];
                let sup_minus = minus_of(w_len + idx);
                let keep = if d_minus == 0 {
                    minsup.is_large(sup_plus, d_plus)
                } else {
                    survives(sup_minus, sup_plus)
                };
                if keep {
                    pruned.push((x, sup_plus));
                }
            }
            let checked = pruned.len() as u64;

            // Scan DB⁻ for the survivors; apply Reduce-DB.
            let mut winners_new_k = 0u64;
            if !pruned.is_empty() {
                let keep_items = if self.config.reduce_db {
                    Some(reduce::item_universe(
                        old.level(k)
                            .map(|(x, _)| x)
                            .chain(pruned.iter().map(|(x, _)| x)),
                    ))
                } else {
                    None
                };
                let cand_sets: Vec<Itemset> = pruned.iter().map(|(x, _)| x.clone()).collect();
                let mut ctree = HashTree::build(cand_sets);
                {
                    let src: &dyn TransactionSource = match &rem_working {
                        Some(wdb) => wdb,
                        None => remainder,
                    };
                    let view = ctree.view();
                    let keep_ref = keep_items.as_ref();
                    let folds = engine::scan_fold(
                        src,
                        &self.config.engine,
                        || (ctree.new_scratch(), ChunkedCollector::new()),
                        |(scratch, kept), chunk, t| {
                            view.count(t, scratch);
                            if let Some(keep) = keep_ref {
                                if let Some(reduced) = reduce::reduce_full_transaction(t, keep, k) {
                                    kept.push(chunk, reduced);
                                }
                            }
                        },
                    );
                    let mut collectors = Vec::with_capacity(folds.len());
                    for (scratch, kept) in folds {
                        ctree.absorb(scratch);
                        collectors.push(kept);
                    }
                    if keep_items.is_some() {
                        rem_working = Some(TransactionDb::from_transactions(
                            ChunkedCollector::merge(collectors),
                        ));
                    }
                }
                for ((x, sup_plus), sup_rem) in pruned.into_iter().zip(ctree.counts()) {
                    let sup_new = sup_rem + sup_plus;
                    if minsup.is_large(sup_new, n) {
                        result.insert(x, sup_new);
                        winners_new_k += 1;
                    }
                }
            }

            stats.passes.push(PassStats {
                k,
                candidates_generated: generated,
                candidates_checked: checked,
                large_found: winners_old_k + winners_new_k,
            });
            detail.push(FupPassDetail {
                k,
                old_large: old.len_at(k) as u64,
                lemma3_losers: lemma3,
                winners_from_old: winners_old_k,
                candidates_generated: generated,
                candidates_after_hash: after_hash,
                candidates_checked: checked,
                winners_from_new: winners_new_k,
            });

            losers_prev = losers_k;
            k += 1;
        }

        // The provider's index(es) now cover DB⁻ ∪ db⁺ — exactly the
        // database after this update commits; the next round can extend.
        provider.finish();
        stats.elapsed = start.elapsed();
        Ok(FupOutcome {
            large: result,
            stats,
            detail,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fup_mining::Apriori;
    use fup_tidb::source::ChainSource;
    use fup_tidb::{SegmentedDb, Transaction, UpdateBatch};

    fn tx(items: &[u32]) -> Transaction {
        Transaction::from_items(items.iter().copied())
    }

    fn s(items: &[u32]) -> Itemset {
        Itemset::from_items(items.iter().copied())
    }

    /// Drives a staged update through FUP2 and cross-checks against a full
    /// re-mine of the updated database.
    fn check_fup2(
        initial: Vec<Transaction>,
        delete_idx: &[usize],
        inserts: Vec<Transaction>,
        minsup: MinSupport,
        config: FupConfig,
    ) -> FupOutcome {
        let mut store = SegmentedDb::new();
        let tids = store.append_all(initial);
        let baseline = Apriori::new().run(&store, minsup).large;
        let batch = UpdateBatch {
            inserts,
            deletes: delete_idx.iter().map(|&i| tids[i]).collect(),
        };
        let staged = store.stage(batch).unwrap();
        let out = Fup2::with_config(config)
            .update(
                &store,
                &baseline,
                staged.deleted(),
                staged.inserted(),
                minsup,
            )
            .unwrap();
        // Re-mine the committed database for the ground truth.
        let updated = ChainSource::new(&store, staged.inserted());
        let remined = Apriori::new().run(&updated, minsup).large;
        assert!(
            out.large.same_itemsets(&remined),
            "FUP2 disagrees with re-mining: {:?}",
            out.large.diff(&remined)
        );
        store.commit(staged);
        out
    }

    #[test]
    fn insert_only_matches_fup_semantics() {
        check_fup2(
            vec![tx(&[1, 2, 3]), tx(&[1, 2]), tx(&[2, 3]), tx(&[3, 4])],
            &[],
            vec![tx(&[1, 2, 3]), tx(&[1, 4])],
            MinSupport::percent(40),
            FupConfig::full(),
        );
    }

    #[test]
    fn delete_only_can_promote_itemsets() {
        // {4,5} has support 2 of 6 (33%) — small at 40%. Deleting two
        // transactions without {4,5} lifts it to 2 of 4 (50%).
        let out = check_fup2(
            vec![
                tx(&[4, 5]),
                tx(&[4, 5]),
                tx(&[1, 2]),
                tx(&[1, 2]),
                tx(&[1, 3]),
                tx(&[2, 3]),
            ],
            &[4, 5],
            vec![],
            MinSupport::percent(40),
            FupConfig::full(),
        );
        assert_eq!(out.large.support(&s(&[4, 5])), Some(2));
    }

    #[test]
    fn delete_only_can_demote_itemsets() {
        // Deleting the transactions that carried {1,2} kills it.
        let out = check_fup2(
            vec![tx(&[1, 2]), tx(&[1, 2]), tx(&[3, 4]), tx(&[3, 4])],
            &[0, 1],
            vec![],
            MinSupport::percent(50),
            FupConfig::full(),
        );
        assert!(!out.large.contains(&s(&[1, 2])));
        assert_eq!(out.large.support(&s(&[3, 4])), Some(2));
    }

    #[test]
    fn mixed_insert_delete() {
        for pct in [25, 40, 60] {
            check_fup2(
                vec![
                    tx(&[1, 2, 3]),
                    tx(&[1, 2]),
                    tx(&[2, 3, 4]),
                    tx(&[1, 3, 4]),
                    tx(&[2, 4]),
                    tx(&[5, 6]),
                ],
                &[1, 4],
                vec![tx(&[5, 6]), tx(&[5, 6, 1]), tx(&[1, 2, 3, 4])],
                MinSupport::percent(pct),
                FupConfig::full(),
            );
        }
    }

    #[test]
    fn mixed_update_bare_config() {
        check_fup2(
            vec![tx(&[1, 2, 3]), tx(&[2, 3]), tx(&[1, 3]), tx(&[3, 4])],
            &[3],
            vec![tx(&[1, 2]), tx(&[1, 2, 3])],
            MinSupport::percent(40),
            FupConfig::bare(),
        );
    }

    #[test]
    fn vertical_backend_matches_remine_on_mixed_updates() {
        use fup_mining::{CountingBackend, EngineConfig};
        let vertical_cfg = || FupConfig {
            engine: EngineConfig::default().with_backend(CountingBackend::Vertical),
            ..FupConfig::full()
        };
        for pct in [25, 40, 60] {
            // Mixed insert + delete.
            check_fup2(
                vec![
                    tx(&[1, 2, 3]),
                    tx(&[1, 2]),
                    tx(&[2, 3, 4]),
                    tx(&[1, 3, 4]),
                    tx(&[2, 4]),
                    tx(&[5, 6]),
                ],
                &[1, 4],
                vec![tx(&[5, 6]), tx(&[5, 6, 1]), tx(&[1, 2, 3, 4])],
                MinSupport::percent(pct),
                vertical_cfg(),
            );
        }
        // Delete-only (db⁺ empty: the index covers DB⁻ alone).
        check_fup2(
            vec![
                tx(&[4, 5]),
                tx(&[4, 5]),
                tx(&[1, 2]),
                tx(&[1, 2]),
                tx(&[1, 3]),
                tx(&[2, 3]),
            ],
            &[4, 5],
            vec![],
            MinSupport::percent(40),
            vertical_cfg(),
        );
        // Insert-only (FUP's stronger Lemma-5 gate applies).
        check_fup2(
            vec![tx(&[1, 2, 3]), tx(&[1, 2]), tx(&[2, 3]), tx(&[3, 4])],
            &[],
            vec![tx(&[1, 2, 3]), tx(&[1, 4])],
            MinSupport::percent(40),
            vertical_cfg(),
        );
    }

    #[test]
    fn delete_everything_yields_empty() {
        let mut store = SegmentedDb::new();
        let tids = store.append_all(vec![tx(&[1, 2]), tx(&[1, 2])]);
        let minsup = MinSupport::percent(50);
        let baseline = Apriori::new().run(&store, minsup).large;
        let staged = store.stage(UpdateBatch::delete_only(tids)).unwrap();
        let out = Fup2::new()
            .update(
                &store,
                &baseline,
                staged.deleted(),
                staged.inserted(),
                minsup,
            )
            .unwrap();
        assert!(out.large.is_empty());
        assert_eq!(out.large.num_transactions(), 0);
    }

    #[test]
    fn noop_update_returns_baseline() {
        let mut store = SegmentedDb::new();
        store.append_all(vec![tx(&[1, 2]), tx(&[2, 3])]);
        let minsup = MinSupport::percent(50);
        let baseline = Apriori::new().run(&store, minsup).large;
        let staged = store.stage(UpdateBatch::default()).unwrap();
        let out = Fup2::new()
            .update(
                &store,
                &baseline,
                staged.deleted(),
                staged.inserted(),
                minsup,
            )
            .unwrap();
        assert!(out.large.same_itemsets(&baseline));
        assert_eq!(out.stats.num_passes(), 0);
    }

    #[test]
    fn stale_baseline_rejected() {
        let store = SegmentedDb::from_transactions(vec![tx(&[1])]);
        let empty = TransactionDb::new();
        let wrong = LargeItemsets::new(7);
        let err = Fup2::new()
            .update(&store, &wrong, &empty, &empty, MinSupport::percent(10))
            .unwrap_err();
        assert!(matches!(
            err,
            Error::StaleBaseline {
                baseline: 7,
                database: 1
            }
        ));
    }

    #[test]
    fn deep_itemsets_with_mixed_updates() {
        check_fup2(
            vec![
                tx(&[1, 2, 3, 4]),
                tx(&[1, 2, 3, 4]),
                tx(&[1, 2, 3]),
                tx(&[9, 8]),
                tx(&[9, 8, 7]),
            ],
            &[2],
            vec![tx(&[1, 2, 3, 4]), tx(&[9, 8, 7]), tx(&[7, 8])],
            MinSupport::percent(40),
            FupConfig::full(),
        );
    }

    #[test]
    fn deletions_that_shift_threshold_boundary() {
        // Threshold boundary: 3 of 10 at 30%; delete 3 → 3 of 7 (42.9%) vs
        // required ⌈2.1⌉ = 3 — stays large; items at 2 of 10 → 2 of 7 vs 3
        // — still small.
        let mut initial = vec![tx(&[1]), tx(&[1]), tx(&[1]), tx(&[2]), tx(&[2])];
        for _ in 0..5 {
            initial.push(tx(&[99]));
        }
        check_fup2(
            initial,
            &[7, 8, 9],
            vec![],
            MinSupport::percent(30),
            FupConfig::full(),
        );
    }

    use fup_tidb::TransactionDb;
}

use super::*;
use crate::session::Maintainer;
use fup_tidb::{MemStorage, TidRange};

fn tx(items: &[u32]) -> Transaction {
    Transaction::from_items(items.iter().copied())
}

fn history() -> Vec<Transaction> {
    vec![
        tx(&[1, 2, 3]),
        tx(&[1, 2]),
        tx(&[2, 3]),
        tx(&[1, 3]),
        tx(&[4, 5]),
        tx(&[1, 2, 3, 4]),
        tx(&[2, 4]),
        tx(&[3, 4, 5]),
    ]
}

fn flat() -> Maintainer {
    Maintainer::builder()
        .min_support(MinSupport::percent(25))
        .min_confidence(MinConfidence::percent(60))
        .build(history())
        .unwrap()
}

fn mem_storages(n: usize) -> Vec<Arc<dyn DurableStorage>> {
    (0..n)
        .map(|_| Arc::new(MemStorage::new()) as Arc<dyn DurableStorage>)
        .collect()
}

fn cluster(spec: ShardSpec) -> Cluster {
    let n = spec.num_shards();
    Cluster::bootstrap(
        spec,
        mem_storages(n),
        history(),
        MinSupport::percent(25),
        MinConfidence::percent(60),
        FupConfig::default(),
    )
    .unwrap()
}

/// The two sessions publish the same version and the same itemsets and
/// rules, bit for bit.
fn assert_identical(c: &Cluster, m: &Maintainer) {
    let cs = c.snapshot();
    let ms = m.snapshot();
    assert_eq!(cs.version(), ms.version());
    assert_eq!(c.num_transactions(), m.len() as u64);
    assert_eq!(cs.large_itemsets(), ms.large_itemsets());
    assert_eq!(cs.rules(), ms.rules());
}

#[test]
fn bootstrap_matches_flat_bootstrap() {
    for shards in [1u32, 2, 4] {
        let c = cluster(ShardSpec::striped_with(shards, 1));
        let m = flat();
        assert_eq!(c.version(), 0);
        assert_eq!(c.num_shards(), shards as usize);
        assert_identical(&c, &m);
        let mut live = 0;
        for s in 0..c.num_shards() {
            live += c.probe(s).unwrap().live;
        }
        assert_eq!(live, history().len() as u64);
        c.shutdown();
    }
}

#[test]
fn insert_rounds_identical_across_shard_counts() {
    for shards in [1u32, 2, 4] {
        let mut c = cluster(ShardSpec::striped_with(shards, 1));
        let mut m = flat();
        for round in 0..3u32 {
            let batch =
                UpdateBatch::insert_only(vec![tx(&[1, 2, 4 + round]), tx(&[2, 3]), tx(&[1, 4, 5])]);
            let cr = c.apply(batch.clone()).unwrap();
            let mr = m.apply(batch).unwrap();
            assert_eq!(cr.algorithm, mr.algorithm);
            assert_eq!(cr.algorithm, "fup");
            assert_eq!(cr.inserted_tids, mr.inserted_tids);
            assert_identical(&c, &m);
        }
        c.shutdown();
    }
}

#[test]
fn cross_shard_delete_rounds_identical() {
    for shards in [1u32, 2, 4] {
        let mut c = cluster(ShardSpec::striped_with(shards, 1));
        let mut m = flat();
        // Deletes span every shard of the striped spec; inserts ride
        // along so the round is a mixed FUP2 round.
        let batch = UpdateBatch {
            inserts: vec![tx(&[1, 3, 5]), tx(&[2, 5])],
            deletes: vec![Tid(0), Tid(1), Tid(2), Tid(3)],
        };
        let cr = c.apply(batch.clone()).unwrap();
        let mr = m.apply(batch).unwrap();
        assert_eq!(cr.algorithm, "fup2");
        assert_eq!(mr.algorithm, "fup2");
        assert_identical(&c, &m);
        // And a pure-deletion follow-up.
        let batch = UpdateBatch::delete_only(vec![Tid(5), Tid(8)]);
        c.apply(batch.clone()).unwrap();
        m.apply(batch).unwrap();
        assert_identical(&c, &m);
        c.shutdown();
    }
}

#[test]
fn range_spec_matches_striped_spec() {
    let mut a = cluster(ShardSpec::striped_with(2, 1));
    let mut b = cluster(ShardSpec::ranges(vec![
        TidRange::new(0, 6),
        TidRange::new(6, u64::MAX),
    ]));
    let batch = UpdateBatch {
        inserts: vec![tx(&[1, 2, 5]), tx(&[3, 4])],
        deletes: vec![Tid(2), Tid(7)],
    };
    a.apply(batch.clone()).unwrap();
    b.apply(batch).unwrap();
    let (sa, sb) = (a.snapshot(), b.snapshot());
    assert_eq!(sa.large_itemsets(), sb.large_itemsets());
    assert_eq!(sa.rules(), sb.rules());
    a.shutdown();
    b.shutdown();
}

#[test]
fn remine_policy_round_identical() {
    let mut c = cluster(ShardSpec::striped_with(2, 1));
    let mut m = flat();
    c.set_policy(UpdatePolicy::AlwaysRemine);
    m.set_policy(UpdatePolicy::AlwaysRemine).unwrap();
    let batch = UpdateBatch {
        inserts: vec![tx(&[1, 2, 3]), tx(&[4, 5])],
        deletes: vec![Tid(4)],
    };
    let cr = c.apply(batch.clone()).unwrap();
    let mr = m.apply(batch).unwrap();
    assert_eq!(cr.algorithm, "apriori-remine");
    assert_eq!(mr.algorithm, "apriori-remine");
    assert_identical(&c, &m);
    c.shutdown();
}

#[test]
fn forced_fup2_on_pure_inserts_identical() {
    let mut c = cluster(ShardSpec::striped_with(2, 1));
    let mut m = Maintainer::builder()
        .min_support(MinSupport::percent(25))
        .min_confidence(MinConfidence::percent(60))
        .updater(Updater::Fup2)
        .build(history())
        .unwrap();
    c.set_updater(Updater::Fup2);
    let batch = UpdateBatch::insert_only(vec![tx(&[1, 2]), tx(&[2, 3, 4])]);
    let cr = c.apply(batch.clone()).unwrap();
    m.apply(batch).unwrap();
    assert_eq!(cr.algorithm, "fup2");
    assert_identical(&c, &m);
    c.shutdown();
}

#[test]
fn killed_worker_fails_fast_and_survivors_keep_serving() {
    let mut c = cluster(ShardSpec::striped_with(2, 1));
    let v0 = c.snapshot();
    c.kill_worker(1);
    assert!(!c.worker_up(1));
    assert!(c.worker_up(0));

    // Staging still admits work; committing fails fast and holds it.
    c.stage(UpdateBatch::insert_only(vec![tx(&[1, 2, 3])]))
        .unwrap();
    let err = c.commit().unwrap_err();
    assert!(matches!(err, Error::WorkerDown { shard: 1, .. }), "{err}");
    assert!(c.staging.has_pending() || c.retry.is_some());

    // Surviving shard answers probes; the published snapshot (and older
    // handles) keep serving reads.
    let probe = c.probe(0).unwrap();
    assert!(probe.live > 0);
    assert!(c.probe(1).is_err());
    assert_eq!(c.snapshot().rules(), v0.rules());

    // Rejoin: recovery from checkpoint + WAL, then the held work commits.
    c.restart_worker(1).unwrap();
    assert!(c.worker_up(1));
    let report = c.commit().unwrap();
    assert_eq!(report.num_transactions, history().len() as u64 + 1);

    // The recovered cluster is still bit-identical to flat.
    let mut m = flat();
    m.apply(UpdateBatch::insert_only(vec![tx(&[1, 2, 3])]))
        .unwrap();
    assert_identical(&c, &m);
    c.shutdown();
}

#[test]
fn acknowledged_commits_survive_kill_and_restart() {
    let mut c = cluster(ShardSpec::striped_with(2, 1));
    let mut m = flat();
    // Two acknowledged rounds after the bootstrap checkpoint: both live
    // only in the workers' WALs.
    let b1 = UpdateBatch::insert_only(vec![tx(&[1, 2, 5]), tx(&[3, 5])]);
    let b2 = UpdateBatch {
        inserts: vec![tx(&[2, 4, 5])],
        deletes: vec![Tid(0), Tid(3)],
    };
    c.apply(b1.clone()).unwrap();
    m.apply(b1).unwrap();
    c.apply(b2.clone()).unwrap();
    m.apply(b2).unwrap();

    let before: Vec<WorkerProbe> = (0..2).map(|s| c.probe(s).unwrap()).collect();
    for (s, probe) in before.iter().enumerate() {
        c.kill_worker(s);
        c.restart_worker(s).unwrap();
        assert_eq!(c.probe(s).unwrap(), *probe, "shard {s}");
    }

    // Post-recovery rounds still match flat — nothing was lost.
    let b3 = UpdateBatch::insert_only(vec![tx(&[1, 4])]);
    c.apply(b3.clone()).unwrap();
    m.apply(b3).unwrap();
    assert_identical(&c, &m);
    c.shutdown();
}

#[test]
fn checkpoint_truncates_wal_and_recovery_reads_it() {
    let mut c = cluster(ShardSpec::striped_with(2, 1));
    let mut m = flat();
    let b = UpdateBatch {
        inserts: vec![tx(&[1, 2, 3]), tx(&[4, 5])],
        deletes: vec![Tid(1)],
    };
    c.apply(b.clone()).unwrap();
    m.apply(b).unwrap();
    c.checkpoint().unwrap();
    for s in 0..2 {
        assert!(
            c.storages[s].read(WAL_FILE).unwrap().is_none(),
            "shard {s}: WAL not truncated"
        );
        assert!(c.storages[s].read(CHECKPOINT_FILE).unwrap().is_some());
        c.kill_worker(s);
        c.restart_worker(s).unwrap();
    }
    let b = UpdateBatch::insert_only(vec![tx(&[2, 3, 5])]);
    c.apply(b.clone()).unwrap();
    m.apply(b).unwrap();
    assert_identical(&c, &m);
    c.shutdown();
}

#[test]
fn worker_recovers_undecided_staged_round_and_resolves_it() {
    // Worker-level: a round staged (WAL-logged, acknowledged) right
    // before a crash must be re-staged at recovery and complete from
    // the coordinator's phase-2 decision — the acknowledged-commit
    // guarantee of the two-phase protocol.
    let storage: Arc<dyn DurableStorage> = Arc::new(MemStorage::new());
    let engine = EngineConfig::default();
    let mut w = ShardWorker::recover(0, Arc::clone(&storage), engine.clone()).unwrap();
    let base = vec![(Tid(0), tx(&[1, 2])), (Tid(1), tx(&[2, 3]))];
    let stage1 = Message::StageRound {
        round: 1,
        inserts: base.clone(),
        deletes: vec![],
    };
    assert!(matches!(
        w.handle(&stage1).unwrap(),
        Message::StagedOk { round: 1, .. }
    ));
    assert_eq!(
        w.handle(&Message::CommitRound { round: 1 }).unwrap(),
        Message::Ok
    );

    // Round 2 stages (delete + insert) and the worker dies undecided.
    let stage2 = Message::StageRound {
        round: 2,
        inserts: vec![(Tid(2), tx(&[1, 3]))],
        deletes: vec![Tid(0)],
    };
    assert!(matches!(
        w.handle(&stage2).unwrap(),
        Message::StagedOk { round: 2, .. }
    ));
    drop(w);

    let mut w = ShardWorker::recover(0, Arc::clone(&storage), engine.clone()).unwrap();
    match w.handle(&Message::HealthProbe).unwrap() {
        Message::Health {
            live,
            decided_round,
            staged_round,
        } => {
            assert_eq!(live, 1, "round 2's delete is re-applied while staged");
            assert_eq!(decided_round, 1);
            assert_eq!(staged_round, Some(2));
        }
        other => panic!("unexpected probe reply: {other:?}"),
    }
    // Commit arm: the staged inserts land, the delete sticks.
    assert_eq!(
        w.handle(&Message::CommitRound { round: 2 }).unwrap(),
        Message::Ok
    );
    match w.handle(&Message::HealthProbe).unwrap() {
        Message::Health {
            live,
            decided_round,
            staged_round,
        } => {
            assert_eq!((live, decided_round, staged_round), (2, 2, None));
        }
        other => panic!("unexpected probe reply: {other:?}"),
    }
    drop(w);

    // Abort arm, from the same storage shape: stage round 3 with a
    // delete, crash, recover, abort — the removed row is restored.
    let mut w = ShardWorker::recover(0, Arc::clone(&storage), engine).unwrap();
    let stage3 = Message::StageRound {
        round: 3,
        inserts: vec![],
        deletes: vec![Tid(1)],
    };
    assert!(matches!(
        w.handle(&stage3).unwrap(),
        Message::StagedOk { round: 3, .. }
    ));
    drop(w);
    let mut w = ShardWorker::recover(0, Arc::clone(&storage), EngineConfig::default()).unwrap();
    assert_eq!(
        w.handle(&Message::AbortRound { round: 3 }).unwrap(),
        Message::Ok
    );
    match w.handle(&Message::HealthProbe).unwrap() {
        Message::Health {
            live,
            decided_round,
            staged_round,
        } => {
            assert_eq!((live, decided_round, staged_round), (2, 3, None));
        }
        other => panic!("unexpected probe reply: {other:?}"),
    }
}

#[test]
fn stage_is_idempotent_and_rejects_conflicts() {
    let storage: Arc<dyn DurableStorage> = Arc::new(MemStorage::new());
    let mut w = ShardWorker::recover(0, storage, EngineConfig::default()).unwrap();
    let stage = Message::StageRound {
        round: 1,
        inserts: vec![(Tid(0), tx(&[1, 2]))],
        deletes: vec![],
    };
    assert!(matches!(
        w.handle(&stage).unwrap(),
        Message::StagedOk { round: 1, .. }
    ));
    // Re-delivery of the same round answers from the held state.
    assert!(matches!(
        w.handle(&stage).unwrap(),
        Message::StagedOk { round: 1, .. }
    ));
    // A different round is refused while one is staged.
    let other = Message::StageRound {
        round: 2,
        inserts: vec![],
        deletes: vec![],
    };
    assert!(matches!(w.handle(&other).unwrap(), Message::Err(_)));
    // Unknown delete tids are refused before anything is logged.
    assert_eq!(
        w.handle(&Message::CommitRound { round: 1 }).unwrap(),
        Message::Ok
    );
    let bad = Message::StageRound {
        round: 2,
        inserts: vec![],
        deletes: vec![Tid(99)],
    };
    assert!(matches!(w.handle(&bad).unwrap(), Message::Err(_)));
}

#[test]
fn rebalance_preserves_identity_and_reports_moves() {
    let mut c = cluster(ShardSpec::striped_with(2, 1));
    let mut m = flat();
    let b = UpdateBatch::insert_only(vec![tx(&[1, 2, 4]), tx(&[3, 5])]);
    c.apply(b.clone()).unwrap();
    m.apply(b).unwrap();
    let version = c.version();

    let moves = c
        .rebalance_to(ShardSpec::striped_with(3, 1), mem_storages(3))
        .unwrap();
    assert!(!moves.is_empty(), "a 2→3 re-stripe moves rows");
    assert_eq!(c.num_shards(), 3);
    assert_eq!(c.version(), version, "rebalance publishes nothing");
    let live: u64 = (0..3).map(|s| c.probe(s).unwrap().live).sum();
    assert_eq!(live, c.num_transactions());
    assert_identical(&c, &m);

    // Rounds keep matching flat under the new spec.
    let b = UpdateBatch {
        inserts: vec![tx(&[2, 3, 4])],
        deletes: vec![Tid(6)],
    };
    c.apply(b.clone()).unwrap();
    m.apply(b).unwrap();
    assert_identical(&c, &m);
    c.shutdown();
}

#[test]
fn rebalance_requires_empty_backlog() {
    let mut c = cluster(ShardSpec::striped_with(2, 1));
    c.stage(UpdateBatch::insert_only(vec![tx(&[1, 2])]))
        .unwrap();
    let err = c
        .rebalance_to(ShardSpec::striped_with(3, 1), mem_storages(3))
        .unwrap_err();
    assert!(matches!(err, Error::Recovery { .. }), "{err}");
    c.commit().unwrap();
    c.rebalance_to(ShardSpec::striped_with(3, 1), mem_storages(3))
        .unwrap();
    c.shutdown();
}

#[test]
fn shard_health_reports_ops_backlog_and_state() {
    let mut c = cluster(ShardSpec::striped_with(2, 1));
    let h = c.shard_health();
    assert_eq!(h.len(), 2);
    let total_ops: u64 = h.iter().map(|s| s.ops).sum();
    assert_eq!(total_ops, history().len() as u64, "bootstrap load ops");
    assert!(h.iter().all(|s| s.state == "up" && s.backlog == 0));

    // Pending work is routed prospectively: inserts to the tids the
    // next commit will assign, deletes to their owning shard.
    c.stage(UpdateBatch {
        inserts: vec![tx(&[1, 2]), tx(&[2, 3]), tx(&[3, 4])],
        deletes: vec![Tid(0), Tid(1)],
    })
    .unwrap();
    let h = c.shard_health();
    assert_eq!(h.iter().map(|s| s.backlog).sum::<u64>(), 5);
    assert_eq!(h[0].backlog, 3, "tids 8, 10 route to shard 0, plus Tid(0)");
    assert_eq!(h[1].backlog, 2, "tid 9 routes to shard 1, plus Tid(1)");

    c.kill_worker(1);
    let h = c.shard_health();
    assert_eq!(h[1].state, "down");
    c.restart_worker(1).unwrap();
    c.commit().unwrap();
    let h = c.shard_health();
    assert!(h.iter().all(|s| s.backlog == 0));
    assert_eq!(
        h.iter().map(|s| s.ops).sum::<u64>(),
        history().len() as u64 + 5
    );
    c.shutdown();
}

#[test]
fn backpressure_holds_capacity_across_a_crash() {
    let mut c = cluster(ShardSpec::striped_with(2, 1));
    c.set_staging_capacity(Some(2));
    c.stage(UpdateBatch::insert_only(vec![tx(&[1, 2]), tx(&[2, 3])]))
        .unwrap();
    c.kill_worker(0);
    assert!(c.commit().is_err());
    // The failed round's batch is parked but still occupies the gate:
    // new work bounces instead of growing the backlog unboundedly.
    let err = c
        .try_stage(UpdateBatch::insert_only(vec![tx(&[4, 5])]))
        .unwrap_err();
    assert!(matches!(err, Error::Store(_)), "{err}");
    c.restart_worker(0).unwrap();
    c.commit().unwrap();
    // Capacity came back with the commit.
    c.try_stage(UpdateBatch::insert_only(vec![tx(&[4, 5])]))
        .unwrap();
    c.commit().unwrap();
    c.shutdown();
}

#[test]
fn bootstrap_validates_spec_and_storages() {
    let Err(err) = Cluster::bootstrap(
        ShardSpec::striped_with(2, 1),
        mem_storages(3),
        history(),
        MinSupport::percent(25),
        MinConfidence::percent(60),
        FupConfig::default(),
    ) else {
        panic!("mismatched storage count must be refused");
    };
    assert!(matches!(err, Error::Recovery { .. }), "{err}");

    // A used namespace is refused — recovery into it is restart_worker's
    // job, not bootstrap's.
    let storages = mem_storages(2);
    let c = Cluster::bootstrap(
        ShardSpec::striped_with(2, 1),
        storages.clone(),
        history(),
        MinSupport::percent(25),
        MinConfidence::percent(60),
        FupConfig::default(),
    )
    .unwrap();
    c.shutdown();
    let Err(err) = Cluster::bootstrap(
        ShardSpec::striped_with(2, 1),
        storages,
        history(),
        MinSupport::percent(25),
        MinConfidence::percent(60),
        FupConfig::default(),
    ) else {
        panic!("a non-empty namespace must be refused");
    };
    assert!(matches!(err, Error::Recovery { .. }), "{err}");
}

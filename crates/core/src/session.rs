//! The session-oriented maintenance API: a [`Maintainer`] built once via
//! [`Maintainer::builder`], fed by **staged** update batches
//! ([`stage`](Maintainer::stage) accumulates, [`commit`](Maintainer::commit)
//! applies them as one FUP/FUP2 round), and read through cheap, versioned
//! [`RuleSnapshot`]s that stay valid and self-consistent while later
//! commits proceed.
//!
//! This is the shape the paper argues for: rule maintenance as an
//! *ongoing service* over a growing database, not a batch re-mine. The
//! session decouples **arrival** (transactions stream in, `stage`) from
//! **application** (one incremental round, `commit`) and **serving**
//! (snapshot reads, untouched by either), and it keeps the expensive
//! per-round state — the vertical tid-list index — alive across rounds:
//! insert-only commits *extend* the held [`VerticalIndex`](fup_mining::VerticalIndex)
//! with the staged delta instead of rebuilding it on first use
//! (see [`crate::vindex`]).
//!
//! The session itself is single-writer: `stage`/`commit` take `&mut
//! self`. For multi-threaded ingestion there are two escalation steps:
//!
//! * [`Maintainer::stage_handle`] returns a [`StageHandle`] — a cloneable
//!   `&self` staging endpoint any number of producer threads can feed
//!   (batches land in the store's sharded staging area and join the next
//!   `commit` in global arrival order);
//! * [`crate::service::MaintainerService`] goes further and owns the
//!   commit side too: a background committer drains the staged batches
//!   into rounds under a [`CommitPolicy`](crate::service::CommitPolicy),
//!   and snapshot reads become wait-free through its epoch-pinned
//!   snapshot cell.
//!
//! ```
//! use fup_core::Maintainer;
//! use fup_mining::{MinConfidence, MinSupport};
//! use fup_tidb::{Transaction, UpdateBatch};
//!
//! let history = vec![
//!     Transaction::from_items([1u32, 2, 3]),
//!     Transaction::from_items([1u32, 2]),
//!     Transaction::from_items([2u32, 3]),
//! ];
//! let mut m = Maintainer::builder()
//!     .min_support(MinSupport::percent(50))
//!     .min_confidence(MinConfidence::percent(80))
//!     .build(history)
//!     .unwrap();
//!
//! // Reads go through version-stamped snapshots...
//! let before = m.snapshot();
//!
//! // ...while updates accumulate and apply in one round.
//! m.stage(UpdateBatch::insert_only(vec![Transaction::from_items([1u32, 3])]))
//!     .unwrap();
//! let report = m.commit().unwrap();
//! assert_eq!(report.num_transactions, 4);
//!
//! // The pre-commit snapshot is still valid, at its own version.
//! assert_eq!(before.version() + 1, m.snapshot().version());
//! ```

use crate::config::FupConfig;
use crate::diff::{ItemsetDiff, RuleDiff};
use crate::durable::{self, DurabilityPolicy, DurableLog, RecoveryReport};
use crate::error::{BuildError, Error, Result};
use crate::fup::Fup;
use crate::fup2::Fup2;
use crate::policy::UpdatePolicy;
use crate::service::ShardHealth;
use crate::shard::ShardProvider;
use crate::vindex::IndexSlot;
use fup_mining::apriori::AprioriConfig;
use fup_mining::rules::generate_rules;
use fup_mining::{
    Apriori, CountingBackend, EngineConfig, Itemset, LargeItemsets, MinConfidence, MinSupport,
    MiningStats, Rule, RuleSet,
};
use fup_tidb::wal::WalRecord;
use fup_tidb::{
    ChunkScratch, DurableStorage, ItemId, LiveTidView, ScanMetrics, SegmentId, SegmentedDb,
    ShardSpec, ShardedDb, ShardedStaged, StagedUpdate, StagingArea, Tid, Transaction,
    TransactionSource, TxChunk, UpdateBatch,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Which incremental updater a session runs at commit time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Updater {
    /// Pick per batch: the paper's FUP for pure insertions, FUP2 once a
    /// batch carries deletions.
    #[default]
    Auto,
    /// Always the paper's base FUP — insertions only. Building a session
    /// with this pin requires declaring the workload insert-only
    /// ([`MaintainerBuilder::deletions`]`(false)`), otherwise the builder
    /// rejects the combination as [`BuildError::DeletionsWithoutFup2`].
    Fup,
    /// Always FUP2 (it subsumes the insert-only case).
    Fup2,
}

/// What one maintenance round changed.
#[derive(Debug, Clone)]
pub struct MaintenanceReport {
    /// Which algorithm ran ("fup" for pure insertions, "fup2" with
    /// deletions, "apriori-remine" when the policy routed to a re-mine).
    pub algorithm: &'static str,
    /// The state version this commit produced (snapshots taken after it
    /// carry the same stamp).
    pub version: u64,
    /// Itemsets that emerged / expired.
    pub itemsets: ItemsetDiff,
    /// Rules that appeared / disappeared.
    pub rules: RuleDiff,
    /// Tids assigned to the inserted transactions.
    pub inserted_tids: Vec<Tid>,
    /// Database size after the update.
    pub num_transactions: u64,
    /// Per-pass mining statistics of the incremental run.
    pub stats: MiningStats,
}

/// Counters describing the session's persistent vertical index (see
/// [`Maintainer::index_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// From-scratch index builds performed so far.
    pub builds: u64,
    /// Rounds that *extended* the held index with a delta scan instead of
    /// rebuilding it.
    pub extends: u64,
    /// `true` while an index is held and ready for the next round.
    pub resident: bool,
}

/// The immutable state one commit produced — shared by the maintainer and
/// every [`RuleSnapshot`] stamped with its version.
#[derive(Debug)]
pub(crate) struct SnapshotState {
    version: u64,
    num_transactions: u64,
    minsup: MinSupport,
    minconf: MinConfidence,
    large: LargeItemsets,
    rules: RuleSet,
    /// Rule indices mentioning each item (antecedent or consequent side).
    rules_by_item: HashMap<ItemId, Vec<u32>>,
    /// Rule indices sorted by confidence, highest first (ties broken by
    /// rule identity for determinism).
    rules_by_confidence: Vec<u32>,
}

impl SnapshotState {
    /// Crate-visible because the cluster coordinator
    /// (`crate::cluster`) publishes the same state the flat session
    /// does — identical inputs must produce an identical snapshot.
    pub(crate) fn new(
        version: u64,
        num_transactions: u64,
        minsup: MinSupport,
        minconf: MinConfidence,
        large: LargeItemsets,
        rules: RuleSet,
    ) -> Self {
        let mut rules_by_item: HashMap<ItemId, Vec<u32>> = HashMap::new();
        for (i, r) in rules.rules().iter().enumerate() {
            for &item in r.antecedent.items().iter().chain(r.consequent.items()) {
                rules_by_item.entry(item).or_default().push(i as u32);
            }
        }
        let mut rules_by_confidence: Vec<u32> = (0..rules.len() as u32).collect();
        rules_by_confidence.sort_by(|&a, &b| {
            let (ra, rb) = (&rules.rules()[a as usize], &rules.rules()[b as usize]);
            rb.confidence()
                .total_cmp(&ra.confidence())
                .then_with(|| ra.cmp(rb))
        });
        SnapshotState {
            version,
            num_transactions,
            minsup,
            minconf,
            large,
            rules,
            rules_by_item,
            rules_by_confidence,
        }
    }

    pub(crate) fn version(&self) -> u64 {
        self.version
    }

    pub(crate) fn large(&self) -> &LargeItemsets {
        &self.large
    }

    pub(crate) fn rules(&self) -> &RuleSet {
        &self.rules
    }
}

/// A cheap, consistent view of the maintained rules and itemsets at one
/// state version.
///
/// Snapshots are `Arc`-backed: taking one is a pointer clone, and a
/// snapshot stays valid — and internally consistent — no matter how many
/// commits the session performs afterwards. Serving-side lookups go
/// through the query methods instead of walking the raw [`RuleSet`].
#[derive(Debug, Clone)]
pub struct RuleSnapshot {
    inner: Arc<SnapshotState>,
}

impl RuleSnapshot {
    /// Wraps a shared state — used by the service layer's snapshot cell.
    pub(crate) fn from_state(inner: Arc<SnapshotState>) -> Self {
        RuleSnapshot { inner }
    }

    /// The state version this snapshot was taken at (0 after bootstrap,
    /// +1 per commit).
    pub fn version(&self) -> u64 {
        self.inner.version
    }

    /// Number of live transactions at this version.
    pub fn num_transactions(&self) -> u64 {
        self.inner.num_transactions
    }

    /// The minimum support the itemsets were maintained at.
    pub fn min_support(&self) -> MinSupport {
        self.inner.minsup
    }

    /// The minimum confidence the rules were derived at.
    pub fn min_confidence(&self) -> MinConfidence {
        self.inner.minconf
    }

    /// The strong rules at this version, sorted.
    pub fn rules(&self) -> &RuleSet {
        &self.inner.rules
    }

    /// The large itemsets (with support counts) at this version.
    pub fn large_itemsets(&self) -> &LargeItemsets {
        &self.inner.large
    }

    /// The exact support count of `itemset` at this version, if it is
    /// large.
    pub fn support_of(&self, itemset: &Itemset) -> Option<u64> {
        self.inner.large.support(itemset)
    }

    /// All rules whose antecedent is exactly `antecedent`, sorted.
    pub fn rules_with_antecedent(&self, antecedent: &Itemset) -> Vec<&Rule> {
        let Some(&first) = antecedent.items().first() else {
            return Vec::new();
        };
        // Every such rule mentions the antecedent's first item, so the
        // per-item postings bound the scan.
        self.rules_for_indices(self.inner.rules_by_item.get(&first))
            .filter(|r| &r.antecedent == antecedent)
            .collect()
    }

    /// All rules mentioning `item` on either side, sorted.
    pub fn rules_about(&self, item: ItemId) -> Vec<&Rule> {
        self.rules_for_indices(self.inner.rules_by_item.get(&item))
            .collect()
    }

    /// The `k` highest-confidence rules (ties broken by rule identity).
    pub fn top_k_by_confidence(&self, k: usize) -> Vec<&Rule> {
        self.inner
            .rules_by_confidence
            .iter()
            .take(k)
            .map(|&i| &self.inner.rules.rules()[i as usize])
            .collect()
    }

    fn rules_for_indices<'s>(
        &'s self,
        indices: Option<&'s Vec<u32>>,
    ) -> impl Iterator<Item = &'s Rule> + 's {
        indices
            .into_iter()
            .flatten()
            .map(|&i| &self.inner.rules.rules()[i as usize])
    }
}

/// A thread-safe producer handle for staging update batches into a
/// session (or a [`MaintainerService`](crate::service::MaintainerService))
/// from any thread — obtained via [`Maintainer::stage_handle`].
///
/// Staging through a handle performs the same arrival-time validation as
/// [`Maintainer::stage`] (deletes must reference live, unclaimed tids;
/// insert-only sessions reject deletions) but takes `&self` and never
/// touches the session: producers run concurrently with each other, with
/// snapshot readers, and with a commit round in flight. Batches join the
/// next commit in global arrival order.
#[derive(Debug, Clone)]
pub struct StageHandle {
    staging: Arc<fup_tidb::StagingArea>,
    deletions: bool,
    durable: Option<Arc<DurableLog>>,
}

impl StageHandle {
    /// Queues a batch for the session's next commit. Validation failures
    /// ([`Error::DeletionsDisabled`], unknown/doubly-deleted tids) leave
    /// nothing queued. On a durable session the batch's WAL record is
    /// written (and, per policy, synced) *before* the batch becomes
    /// visible, so a storage failure here queues nothing either.
    ///
    /// When the staging area has a capacity limit and is full, **waits**
    /// for a commit round to free space — use
    /// [`try_stage`](Self::try_stage) or
    /// [`stage_deadline`](Self::stage_deadline) for bounded waiting.
    pub fn stage(&self, batch: UpdateBatch) -> Result<()> {
        self.stage_with(batch, fup_tidb::Admission::Block)
    }

    /// Non-blocking [`stage`](Self::stage): if the staging area is at
    /// capacity, fails immediately with
    /// [`fup_tidb::Error::WouldBlock`] (wrapped in [`Error::Store`])
    /// instead of waiting.
    pub fn try_stage(&self, batch: UpdateBatch) -> Result<()> {
        self.stage_with(batch, fup_tidb::Admission::Try)
    }

    /// [`stage`](Self::stage) that waits for capacity only until
    /// `deadline`, then fails with [`fup_tidb::Error::StageTimeout`]
    /// (wrapped in [`Error::Store`]).
    pub fn stage_deadline(&self, batch: UpdateBatch, deadline: std::time::Instant) -> Result<()> {
        self.stage_with(batch, fup_tidb::Admission::Deadline(deadline))
    }

    /// [`stage`](Self::stage) with an explicit [`fup_tidb::Admission`]
    /// mode.
    pub fn stage_with(&self, batch: UpdateBatch, admission: fup_tidb::Admission) -> Result<()> {
        if !self.deletions && !batch.deletes.is_empty() {
            return Err(Error::DeletionsDisabled);
        }
        match &self.durable {
            Some(log) => {
                log.log_stage(&self.staging, batch, admission)?;
            }
            None => self
                .staging
                .stage_with(batch, admission)
                .map(|_| ())
                .map_err(Error::Store)?,
        }
        Ok(())
    }

    /// [`try_stage`](Self::try_stage) wrapped in a bounded
    /// backoff-and-retry loop: admission pushback
    /// ([`WouldBlock`](fup_tidb::Error::WouldBlock) /
    /// [`StageTimeout`](fup_tidb::Error::StageTimeout)) and a degraded
    /// durable log ([`Error::DurabilityDegraded`]) are retried per
    /// `retry` (exponential backoff, deterministic jitter); anything
    /// else — validation failures, a closed staging area, a poisoned log
    /// — fails immediately. Exhausting the budget yields
    /// [`Error::RetriesExhausted`] carrying the final error, so callers
    /// can shed with one `match` instead of hand-rolling the loop.
    pub fn stage_with_retry(
        &self,
        batch: UpdateBatch,
        retry: crate::durable::RetryPolicy,
    ) -> Result<()> {
        retry.validate()?;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let err = match self.try_stage(batch.clone()) {
                Ok(()) => return Ok(()),
                Err(e) => e,
            };
            let retryable = matches!(
                err,
                Error::DurabilityDegraded
                    | Error::Store(
                        fup_tidb::Error::WouldBlock { .. } | fup_tidb::Error::StageTimeout { .. }
                    )
            );
            if !retryable {
                return Err(err);
            }
            if attempt >= retry.max_attempts {
                return Err(Error::RetriesExhausted {
                    attempts: attempt,
                    last: Box::new(err),
                });
            }
            retry.pause(attempt);
        }
    }

    /// `(inserts, deletes)` currently staged and awaiting a commit.
    pub fn pending_ops(&self) -> (u64, u64) {
        self.staging.pending_ops()
    }

    /// The shared staging area itself — the service layer configures its
    /// capacity gate and closes/reopens admissions through this.
    pub(crate) fn staging_area(&self) -> &Arc<fup_tidb::StagingArea> {
        &self.staging
    }

    /// The session's durable log, when there is one — the service layer
    /// reads health gauges through this.
    pub(crate) fn durable_log(&self) -> Option<&Arc<DurableLog>> {
        self.durable.as_ref()
    }
}

/// How to rebuild a durable session from its own storage: the fully
/// resolved builder configuration plus the storage handle. Captured once
/// by the service's committer supervisor so a panicked committer can be
/// respawned through [`MaintainerBuilder::recover`].
#[derive(Debug, Clone)]
pub(crate) struct RecoverySpec {
    pub(crate) builder: MaintainerBuilder,
    pub(crate) storage: Arc<dyn DurableStorage>,
}

/// Fluent, validating builder for a [`Maintainer`] session — the one
/// place the previously scattered knobs ([`MinSupport`],
/// [`MinConfidence`], [`FupConfig`], [`EngineConfig`],
/// [`GenConfig`](fup_mining::GenConfig), [`UpdatePolicy`],
/// [`CountingBackend`]) come together. Later calls win over earlier ones;
/// [`build`](MaintainerBuilder::build) rejects bad combinations with a
/// typed [`BuildError`] instead of panicking at runtime.
#[derive(Debug, Clone, Default)]
pub struct MaintainerBuilder {
    minsup: Option<MinSupport>,
    minconf: Option<MinConfidence>,
    config: FupConfig,
    threads: Option<usize>,
    gen_threads: Option<usize>,
    chunk_size: Option<usize>,
    backend: Option<CountingBackend>,
    policy: UpdatePolicy,
    updater: Updater,
    deletions: bool,
    durability: DurabilityPolicy,
    shards: Option<ShardSpec>,
}

impl MaintainerBuilder {
    fn new() -> Self {
        MaintainerBuilder {
            deletions: true,
            ..Self::default()
        }
    }

    /// The minimum support threshold (required).
    pub fn min_support(mut self, minsup: MinSupport) -> Self {
        self.minsup = Some(minsup);
        self
    }

    /// The minimum confidence threshold (required).
    pub fn min_confidence(mut self, minconf: MinConfidence) -> Self {
        self.minconf = Some(minconf);
        self
    }

    /// Replaces the whole FUP configuration (optimisation toggles and
    /// engine settings), discarding any earlier fine-grained calls;
    /// fine-grained calls made *after* this one override individual
    /// fields.
    pub fn fup_config(mut self, config: FupConfig) -> Self {
        self.config = config;
        self.clear_engine_overrides();
        self
    }

    /// Replaces the counting-engine configuration wholesale, discarding
    /// any earlier fine-grained engine calls; fine-grained calls made
    /// *after* this one override individual fields.
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.config.engine = engine;
        self.clear_engine_overrides();
        self
    }

    /// Drops pending fine-grained engine overrides so that a wholesale
    /// [`engine`](Self::engine) / [`fup_config`](Self::fup_config) call
    /// wins over everything before it — the "later calls win" contract.
    fn clear_engine_overrides(&mut self) {
        self.threads = None;
        self.gen_threads = None;
        self.chunk_size = None;
        self.backend = None;
    }

    /// Worker threads for counting scans *and* candidate generation.
    /// Explicitly passing `0` is a [`BuildError::ZeroThreads`]; omit the
    /// call to use the machine's available parallelism.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Worker threads for candidate generation alone (overrides the
    /// [`threads`](Self::threads) value for that phase).
    pub fn gen_threads(mut self, threads: usize) -> Self {
        self.gen_threads = Some(threads);
        self
    }

    /// Transactions per claimed scan chunk (must be ≥ 1).
    pub fn chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = Some(chunk_size);
        self
    }

    /// The support-counting backend for every scan of the session.
    pub fn backend(mut self, backend: CountingBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Toggles the `Reduce-db`/`Reduce-DB` trimming of §3.4.
    pub fn reduce_db(mut self, on: bool) -> Self {
        self.config.reduce_db = on;
        self
    }

    /// Toggles DHP-style pair hashing over the increment (§3.4).
    pub fn dhp_hash(mut self, on: bool) -> Self {
        self.config.dhp_hash = on;
        self
    }

    /// Bucket count for the DHP pair hash (must be ≥ 1 while
    /// [`dhp_hash`](Self::dhp_hash) is on).
    pub fn hash_buckets(mut self, buckets: usize) -> Self {
        self.config.hash_buckets = buckets;
        self
    }

    /// Caps mining at iteration `k` (must be ≥ 1). Incompatible with
    /// re-mining policies, which ignore the cap.
    pub fn max_k(mut self, k: usize) -> Self {
        self.config.max_k = Some(k);
        self
    }

    /// The incremental-vs-remine policy (validated like
    /// [`Maintainer::set_policy`]).
    pub fn policy(mut self, policy: UpdatePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Pins the incremental updater (default: [`Updater::Auto`]).
    pub fn updater(mut self, updater: Updater) -> Self {
        self.updater = updater;
        self
    }

    /// Declares whether the workload contains deletions (default `true`).
    /// With `false`, staging a batch that deletes anything fails with
    /// [`Error::DeletionsDisabled`] — and pinning [`Updater::Fup`]
    /// becomes legal.
    pub fn deletions(mut self, deletions: bool) -> Self {
        self.deletions = deletions;
        self
    }

    /// The durability policy [`build_durable`](Self::build_durable) and
    /// [`recover`](Self::recover) will run under (ignored by the
    /// in-memory [`build`](Self::build)).
    pub fn durability(mut self, policy: DurabilityPolicy) -> Self {
        self.durability = policy;
        self
    }

    /// Partitions the session's store into `n` tid-range shards (striped
    /// with the default stripe width). Every FUP/FUP2 round then counts
    /// shard-by-shard — per-shard persistent vertical indexes, per-shard
    /// chunk cursors — and merges local supports by summation (count
    /// distribution), producing **bit-identical** itemsets, rules and
    /// support counts to the unsharded session at any shard count. A
    /// deletion invalidates only the shards it touches.
    ///
    /// `shards(0)` is rejected at build time as
    /// [`BuildError::InvalidShardSpec`].
    pub fn shards(mut self, n: u32) -> Self {
        self.shards = Some(ShardSpec::striped(n));
        self
    }

    /// [`shards`](Self::shards) with an explicit routing spec — custom
    /// stripe widths or explicit tid ranges. Specs whose routing is not
    /// total (overlapping or gapping ranges, a bounded tail, zero shards)
    /// are rejected at build time as [`BuildError::InvalidShardSpec`].
    pub fn shard_spec(mut self, spec: ShardSpec) -> Self {
        self.shards = Some(spec);
        self
    }

    /// Resolves the fine-grained overrides into a validated
    /// `(minsup, minconf, config)` triple — the shared front half of
    /// [`build`](Self::build), [`build_durable`](Self::build_durable) and
    /// [`recover`](Self::recover).
    fn validated(&self) -> std::result::Result<(MinSupport, MinConfidence, FupConfig), BuildError> {
        let minsup = self.minsup.ok_or(BuildError::MissingMinSupport)?;
        let minconf = self.minconf.ok_or(BuildError::MissingMinConfidence)?;
        let mut config = self.config.clone();
        if let Some(t) = self.threads {
            if t == 0 {
                return Err(BuildError::ZeroThreads);
            }
            config.engine.threads = t;
            config.engine.gen.threads = t;
        }
        if let Some(t) = self.gen_threads {
            if t == 0 {
                return Err(BuildError::ZeroThreads);
            }
            config.engine.gen.threads = t;
        }
        if let Some(c) = self.chunk_size {
            if c == 0 {
                return Err(BuildError::ZeroChunkSize);
            }
            config.engine.chunk_size = c;
        }
        if let Some(b) = self.backend {
            config.engine.backend = b;
        }
        if config.dhp_hash && config.hash_buckets == 0 {
            return Err(BuildError::ZeroHashBuckets);
        }
        if config.max_k == Some(0) {
            return Err(BuildError::ZeroMaxK);
        }
        validate_policy(self.policy, &config)?;
        if self.updater == Updater::Fup && self.deletions {
            return Err(BuildError::DeletionsWithoutFup2);
        }
        if let Some(spec) = &self.shards {
            spec.validate().map_err(BuildError::InvalidShardSpec)?;
        }
        Ok((minsup, minconf, config))
    }

    /// Validates the configuration, then bootstraps the session: loads
    /// `history` into the store, mines it from scratch with Apriori (on
    /// the configured engine), and derives the initial rules as state
    /// version 0.
    pub fn build(self, history: Vec<Transaction>) -> std::result::Result<Maintainer, BuildError> {
        let (minsup, minconf, config) = self.validated()?;
        let mut m =
            Maintainer::bootstrap_unchecked(history, minsup, minconf, config, self.shards.clone());
        m.policy = self.policy;
        m.updater = self.updater;
        m.deletions = self.deletions;
        Ok(m)
    }

    /// [`build`](Self::build), made durable: bootstraps the session and
    /// writes its first checkpoint (`ckpt-0`) and an empty WAL segment to
    /// `storage` before returning. Every later [`stage`](Maintainer::stage)
    /// appends a WAL record before the batch becomes visible, every
    /// [`commit`](Maintainer::commit) appends a boundary record, and the
    /// [`DurabilityPolicy`] drives periodic checkpoints.
    ///
    /// `storage` must be empty — pointing a *new* session at a directory
    /// holding an existing durable session is almost certainly a mistake
    /// (it would shadow that session's history), so it fails with
    /// [`Error::Recovery`]; use [`recover`](Self::recover) instead.
    pub fn build_durable(
        self,
        history: Vec<Transaction>,
        storage: Arc<dyn DurableStorage>,
    ) -> Result<Maintainer> {
        self.durability.validate().map_err(Error::Config)?;
        let existing = storage.list().map_err(Error::Store)?;
        if !existing.is_empty() {
            return Err(Error::Recovery {
                reason: format!(
                    "storage already holds {} file(s); recover() the existing session \
                     or point build_durable() at an empty directory",
                    existing.len()
                ),
            });
        }
        let durability = self.durability;
        let mut m = self.build(history).map_err(Error::Config)?;
        let log = Arc::new(DurableLog::new(storage, durability, 0));
        let bytes = m.encode_checkpoint_image(0)?;
        log.install_checkpoint(0, &bytes)?;
        m.durable = Some(log);
        Ok(m)
    }

    /// Rebuilds a durable session from `storage`: loads the newest
    /// checkpoint that validates (falling back past corrupt ones),
    /// replays the WAL tail — committed rounds are re-applied exactly,
    /// un-committed staged batches are re-queued, a torn tail is dropped —
    /// and writes a fresh recovery checkpoint. The recovered session's
    /// state is identical to the pre-crash session at its last
    /// durably-acknowledged commit.
    ///
    /// The builder supplies the *configuration* (engine, policy, updater —
    /// none of that is checkpointed), but its thresholds must match the
    /// checkpointed session's: maintained support counts are only valid
    /// under the thresholds they were mined with.
    pub fn recover(self, storage: Arc<dyn DurableStorage>) -> Result<(Maintainer, RecoveryReport)> {
        self.durability.validate().map_err(Error::Config)?;
        let (minsup, minconf, config) = self.validated().map_err(Error::Config)?;
        let recovered = durable::load_latest(storage.as_ref())?;
        let image = recovered.image;
        if (minsup.num(), minsup.den()) != image.minsup
            || (minconf.num(), minconf.den()) != image.minconf
        {
            return Err(Error::Recovery {
                reason: format!(
                    "checkpoint was written under minsup {}/{} and minconf {}/{} but the \
                     builder asks for {}/{} and {}/{}; maintained support counts are only \
                     valid under their original thresholds",
                    image.minsup.0,
                    image.minsup.1,
                    image.minconf.0,
                    image.minconf.1,
                    minsup.num(),
                    minsup.den(),
                    minconf.num(),
                    minconf.den(),
                ),
            });
        }
        if image.large.num_transactions() != image.live.len() as u64 {
            return Err(Error::Recovery {
                reason: format!(
                    "checkpoint itemsets cover {} transactions but the image holds {}",
                    image.large.num_transactions(),
                    image.live.len()
                ),
            });
        }

        // Rebuild the store and published state exactly as checkpointed.
        // The shard spec is pure configuration: the checkpoint format is
        // shard-agnostic, so any valid spec (including none) can recover
        // any image — every row is re-routed by tid.
        let store = match &self.shards {
            None => SessionStore::Flat(SegmentedDb::from_recovered(
                image.live,
                image.watermark,
                image.tombstones,
                image.next_segment,
            )),
            Some(spec) => SessionStore::Sharded(
                ShardedDb::from_recovered(
                    spec.clone(),
                    image.live,
                    image.watermark,
                    image.tombstones,
                    image.next_segment,
                )
                .map_err(|e| Error::Config(BuildError::InvalidShardSpec(e)))?,
            ),
        };
        let rules = generate_rules(&image.large, minconf);
        let state = Arc::new(SnapshotState::new(
            image.version,
            store.len() as u64,
            minsup,
            minconf,
            image.large,
            rules,
        ));
        let mut slots = new_slots(store.num_shards());
        if let Some(idx) = image.index {
            // A checkpointed index is positional over the whole store and
            // cannot be split, so only a flat session can restore it; a
            // sharded recovery rebuilds per-shard indexes on first use.
            if matches!(store, SessionStore::Flat(_)) {
                slots[0].restore(idx);
            }
        }
        let shard_ops = vec![0; store.num_shards()];
        let mut m = Maintainer {
            store,
            state,
            minsup,
            minconf,
            config,
            policy: self.policy,
            updater: self.updater,
            deletions: self.deletions,
            slots,
            shard_ops,
            durable: None,
        };

        // Replay the WAL tail. Staged batches gather in a ticket-ordered
        // pending map seeded with the checkpoint's backlog (their Stage
        // records live in rotated-away segments); each Commit boundary
        // re-runs its round through the ordinary commit path, which is
        // deterministic given the ticket order.
        let mut pending: BTreeMap<u64, UpdateBatch> = image.backlog.into_iter().collect();
        let mut max_ticket = pending.keys().next_back().copied();
        let mut replayed_rounds = 0u64;
        for record in recovered.replay {
            match record {
                WalRecord::Stage { ticket, batch } => {
                    max_ticket = max_ticket.max(Some(ticket));
                    pending.insert(ticket, batch);
                }
                WalRecord::Commit { version, tickets } => {
                    let mut entries = Vec::with_capacity(tickets.len());
                    for ticket in tickets {
                        let batch = pending.remove(&ticket).ok_or_else(|| Error::Recovery {
                            reason: format!(
                                "WAL commit for version {version} references ticket {ticket} \
                                 with no staged record"
                            ),
                        })?;
                        entries.push((ticket, batch));
                    }
                    let merged = StagingArea::merge_entries(entries);
                    let report = m.commit_batch(merged)?;
                    if report.version != version {
                        return Err(Error::Recovery {
                            reason: format!(
                                "replay diverged: WAL commit is version {version} but the \
                                 replayed round produced version {}",
                                report.version
                            ),
                        });
                    }
                    replayed_rounds += 1;
                }
                WalRecord::Abort { tickets } => {
                    for ticket in tickets {
                        pending.remove(&ticket);
                    }
                }
            }
        }

        // Whatever is still pending was staged (durably) but never reached
        // a commit boundary: re-queue it under its original ticket.
        let restaged_batches = pending.len() as u64;
        {
            let staging = m.store.staging();
            for (&ticket, batch) in &pending {
                staging.claim(&batch.deletes).map_err(|e| Error::Recovery {
                    reason: format!("re-staging ticket {ticket} failed: {e}"),
                })?;
                // Recovered backlog bypasses the capacity gate (it was
                // already admitted once) but must still occupy it, so a
                // later bound sees the true backlog.
                staging.reserve_restored(batch.num_ops());
                staging.admit_with_ticket(ticket, batch.clone());
            }
            if let Some(t) = max_ticket {
                staging.bump_ticket(t + 1);
            }
        }

        // Seal recovery with a fresh checkpoint past every sequence number
        // seen in storage, so damaged files can never shadow it.
        let log = Arc::new(DurableLog::new(storage, self.durability, recovered.max_seq));
        let seq = recovered.max_seq + 1;
        let bytes = m.encode_checkpoint_image(seq)?;
        log.install_checkpoint(seq, &bytes)?;
        m.durable = Some(log);

        let report = RecoveryReport {
            checkpoint_seq: image.seq,
            corrupt_checkpoints: recovered.corrupt_checkpoints,
            replayed_rounds,
            restaged_batches,
            wal_tail_dropped: recovered.wal_tail_dropped,
            version: m.version(),
        };
        Ok((m, report))
    }
}

/// Checks that the configured updater can actually honor `policy` —
/// shared by the builder and [`Maintainer::set_policy`].
fn validate_policy(
    policy: UpdatePolicy,
    config: &FupConfig,
) -> std::result::Result<(), BuildError> {
    let remine_capable = match policy {
        UpdatePolicy::AlwaysIncremental => false,
        UpdatePolicy::AlwaysRemine => true,
        UpdatePolicy::RemineOverRatio(r) => {
            if r.is_nan() || r < 0.0 {
                return Err(BuildError::InvalidRemineRatio(r));
            }
            true
        }
    };
    if remine_capable && config.max_k.is_some() {
        return Err(BuildError::RemineIgnoresMaxK);
    }
    Ok(())
}

/// One fresh [`IndexSlot`] per shard (one for a flat store).
fn new_slots(n: usize) -> Vec<IndexSlot> {
    (0..n.max(1)).map(|_| IndexSlot::new()).collect()
}

/// The session's transaction store: a flat [`SegmentedDb`] or a
/// tid-range-sharded [`ShardedDb`] (see [`MaintainerBuilder::shards`]).
///
/// Both arms expose the same tid space, staging area, live-tid view and
/// scan contract, so every maintenance path — staging, FUP/FUP2 rounds,
/// re-mines, checkpoints, recovery — drives either store through this one
/// type. The sharded arm additionally partitions its chunk plan per shard
/// ([`TransactionSource::chunk_partitions`]) and carries per-shard insert
/// slices through a round, which is what the shard-parallel counting and
/// the count-distribution merge key off.
#[derive(Debug)]
pub enum SessionStore {
    /// The unsharded store: one [`SegmentedDb`].
    Flat(SegmentedDb),
    /// The tid-range-partitioned store: N [`SegmentedDb`] shards behind
    /// one tid space.
    Sharded(ShardedDb),
}

impl SessionStore {
    fn source(&self) -> &dyn TransactionSource {
        match self {
            SessionStore::Flat(db) => db,
            SessionStore::Sharded(db) => db,
        }
    }

    /// Number of shards (1 for a flat store).
    pub fn num_shards(&self) -> usize {
        match self {
            SessionStore::Flat(_) => 1,
            SessionStore::Sharded(db) => db.num_shards(),
        }
    }

    /// The routing spec, when the store is sharded.
    pub fn shard_spec(&self) -> Option<&ShardSpec> {
        match self {
            SessionStore::Flat(_) => None,
            SessionStore::Sharded(db) => Some(db.spec()),
        }
    }

    /// Live transaction count per shard — the balance view (a single
    /// entry for a flat store).
    pub fn shard_lens(&self) -> Vec<usize> {
        match self {
            SessionStore::Flat(db) => vec![db.len()],
            SessionStore::Sharded(db) => db.shard_lens(),
        }
    }

    /// Number of live transactions.
    pub fn len(&self) -> usize {
        match self {
            SessionStore::Flat(db) => db.len(),
            SessionStore::Sharded(db) => db.len(),
        }
    }

    /// `true` if no transaction is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates `(tid, transaction)` pairs in scan order without charging
    /// scan metrics.
    pub fn iter(&self) -> Box<dyn Iterator<Item = (Tid, &Transaction)> + '_> {
        match self {
            SessionStore::Flat(db) => Box::new(db.iter()),
            SessionStore::Sharded(db) => Box::new(db.iter()),
        }
    }

    /// The live-tid view shared with delete validation and the durable
    /// checkpoint format.
    pub fn live_view(&self) -> LiveTidView {
        match self {
            SessionStore::Flat(db) => db.live_view(),
            SessionStore::Sharded(db) => db.live_view(),
        }
    }

    /// The scan accounting for this store.
    pub fn metrics(&self) -> &ScanMetrics {
        self.source().metrics()
    }

    pub(crate) fn staging(&self) -> Arc<StagingArea> {
        match self {
            SessionStore::Flat(db) => db.staging(),
            SessionStore::Sharded(db) => db.staging(),
        }
    }

    fn enqueue(&self, batch: UpdateBatch) -> fup_tidb::Result<()> {
        match self {
            SessionStore::Flat(db) => db.enqueue(batch),
            SessionStore::Sharded(db) => db.enqueue(batch),
        }
    }

    fn pending(&self) -> UpdateBatch {
        match self {
            SessionStore::Flat(db) => db.pending(),
            SessionStore::Sharded(db) => db.pending(),
        }
    }

    fn has_pending(&self) -> bool {
        match self {
            SessionStore::Flat(db) => db.has_pending(),
            SessionStore::Sharded(db) => db.has_pending(),
        }
    }

    fn take_pending_entries(&mut self) -> Vec<(u64, UpdateBatch)> {
        match self {
            SessionStore::Flat(db) => db.take_pending_entries(),
            SessionStore::Sharded(db) => db.take_pending_entries(),
        }
    }

    fn take_pending_entries_up_to(&mut self, max_ops: Option<u64>) -> Vec<(u64, UpdateBatch)> {
        match self {
            SessionStore::Flat(db) => db.take_pending_entries_up_to(max_ops),
            SessionStore::Sharded(db) => db.take_pending_entries_up_to(max_ops),
        }
    }

    fn discard_pending(&mut self) -> UpdateBatch {
        match self {
            SessionStore::Flat(db) => db.discard_pending(),
            SessionStore::Sharded(db) => db.discard_pending(),
        }
    }

    fn watermark(&self) -> u64 {
        match self {
            SessionStore::Flat(db) => db.watermark(),
            SessionStore::Sharded(db) => db.watermark(),
        }
    }

    fn next_segment(&self) -> u32 {
        match self {
            SessionStore::Flat(db) => db.next_segment(),
            SessionStore::Sharded(db) => db.next_segment(),
        }
    }

    fn is_tid_ordered(&self) -> bool {
        match self {
            SessionStore::Flat(db) => db.is_tid_ordered(),
            SessionStore::Sharded(db) => db.is_tid_ordered(),
        }
    }

    fn stage(&mut self, batch: UpdateBatch) -> fup_tidb::Result<StagedAny> {
        match self {
            SessionStore::Flat(db) => db.stage(batch).map(StagedAny::Flat),
            SessionStore::Sharded(db) => db.stage(batch).map(StagedAny::Sharded),
        }
    }

    fn commit(&mut self, staged: StagedAny) -> (SegmentId, Vec<Tid>) {
        match (self, staged) {
            (SessionStore::Flat(db), StagedAny::Flat(s)) => db.commit(s),
            (SessionStore::Sharded(db), StagedAny::Sharded(s)) => db.commit(s),
            _ => unreachable!("staged update committed against a different store kind"),
        }
    }

    fn abort(&mut self, staged: StagedAny) {
        match (self, staged) {
            (SessionStore::Flat(db), StagedAny::Flat(s)) => db.abort(s),
            (SessionStore::Sharded(db), StagedAny::Sharded(s)) => db.abort(s),
            _ => unreachable!("staged update aborted against a different store kind"),
        }
    }
}

impl TransactionSource for SessionStore {
    fn num_transactions(&self) -> u64 {
        self.source().num_transactions()
    }

    fn for_each(&self, f: &mut dyn FnMut(&[ItemId])) {
        self.source().for_each(f);
    }

    fn metrics(&self) -> &ScanMetrics {
        self.source().metrics()
    }

    fn record_scan_start(&self) {
        self.source().record_scan_start();
    }

    fn plan_chunks(&self, chunk_size: usize) -> u64 {
        self.source().plan_chunks(chunk_size)
    }

    fn chunk_partitions(&self, chunk_size: usize) -> Vec<u64> {
        self.source().chunk_partitions(chunk_size)
    }

    fn chunk<'s>(
        &'s self,
        chunk_size: usize,
        index: u64,
        scratch: &'s mut ChunkScratch,
    ) -> TxChunk<'s> {
        self.source().chunk(chunk_size, index, scratch)
    }

    fn chunk_tid_offset(&self, chunk_size: usize, index: u64) -> u64 {
        self.source().chunk_tid_offset(chunk_size, index)
    }
}

/// A staged (uncommitted) update of either store kind — the sharded arm
/// additionally carries the per-shard insert/delete slices the
/// shard-parallel round consumes.
#[derive(Debug)]
pub(crate) enum StagedAny {
    Flat(StagedUpdate),
    Sharded(ShardedStaged),
}

impl StagedAny {
    fn num_deleted(&self) -> u64 {
        match self {
            StagedAny::Flat(s) => s.num_deleted(),
            StagedAny::Sharded(s) => s.num_deleted(),
        }
    }
}

/// A rule-maintenance session: owns the transaction store, the current
/// mined state, and a persistent vertical index, and keeps discovered
/// association rules current across staged insert/delete batches.
///
/// Construction goes through [`Maintainer::builder`]. Updates **arrive**
/// via [`stage`](Maintainer::stage) (accumulated on the store's staging
/// area, invisible to scans and reads), are **applied** by
/// [`commit`](Maintainer::commit) (one FUP/FUP2 round over everything
/// staged), and are **served** via [`snapshot`](Maintainer::snapshot)
/// (version-stamped, `Arc`-backed reads that later commits never
/// invalidate).
#[derive(Debug)]
pub struct Maintainer {
    store: SessionStore,
    state: Arc<SnapshotState>,
    minsup: MinSupport,
    minconf: MinConfidence,
    config: FupConfig,
    policy: UpdatePolicy,
    updater: Updater,
    deletions: bool,
    /// One persistent vertical-index slot per shard (a single slot for a
    /// flat store).
    slots: Vec<IndexSlot>,
    /// Update ops (inserts + deletes) committed into each shard since
    /// the session started (one counter for a flat store) — the
    /// [`ShardHealth`](crate::service::ShardHealth) `ops` gauge.
    shard_ops: Vec<u64>,
    durable: Option<Arc<DurableLog>>,
}

impl Maintainer {
    /// Starts configuring a session.
    pub fn builder() -> MaintainerBuilder {
        MaintainerBuilder::new()
    }

    /// Bootstrap without builder validation — the builder validates
    /// first and then calls this.
    pub(crate) fn bootstrap_unchecked(
        history: Vec<Transaction>,
        minsup: MinSupport,
        minconf: MinConfidence,
        config: FupConfig,
        shards: Option<ShardSpec>,
    ) -> Self {
        let store = match shards {
            None => SessionStore::Flat(SegmentedDb::from_transactions(history)),
            Some(spec) => SessionStore::Sharded(
                ShardedDb::from_transactions(spec, history)
                    .expect("shard spec validated by the builder"),
            ),
        };
        let (outcome, built) = Apriori::with_config(AprioriConfig {
            engine: config.engine.clone(),
            ..Default::default()
        })
        .run_with_index(&store, minsup);
        let large = outcome.large;
        let rules = generate_rules(&large, minconf);
        let mut slots = new_slots(store.num_shards());
        match &store {
            SessionStore::Flat(_) => {
                if let Some(idx) = built {
                    // The bootstrap mine engaged vertical counting (pinned,
                    // or Auto past its thresholds) and already paid for an
                    // index covering the store, filtered to L₁ — adopt it so
                    // even the *first* commit extends instead of building.
                    slots[0].adopt(idx);
                } else if config.engine.backend == CountingBackend::Vertical && !store.is_empty() {
                    // A pinned-vertical session wants the index on every
                    // commit even when the bootstrap found no pass-2
                    // candidates to count through it; seed from a fresh scan.
                    slots[0].seed(
                        &store,
                        large.level(1).map(|(x, _)| x.items()[0]),
                        &config.engine,
                    );
                }
            }
            SessionStore::Sharded(db) => {
                // The bootstrap index (if any) is positional over the whole
                // store and cannot be split, so it is dropped. A
                // pinned-vertical session seeds one index per shard instead,
                // each over its shard's rows alone.
                if config.engine.backend == CountingBackend::Vertical {
                    for (s, slot) in slots.iter_mut().enumerate() {
                        if !db.shard(s).is_empty() {
                            slot.seed(
                                db.shard(s),
                                large.level(1).map(|(x, _)| x.items()[0]),
                                &config.engine,
                            );
                        }
                    }
                }
            }
        }
        let state = Arc::new(SnapshotState::new(
            0,
            store.len() as u64,
            minsup,
            minconf,
            large,
            rules,
        ));
        let shard_ops = vec![0; store.num_shards()];
        Maintainer {
            store,
            state,
            minsup,
            minconf,
            config,
            policy: UpdatePolicy::default(),
            updater: Updater::default(),
            deletions: true,
            slots,
            shard_ops,
            durable: None,
        }
    }

    // ------------------------------------------------------ staging --

    /// Queues a batch for the next commit. The batch is validated at
    /// arrival (unknown or doubly-deleted tids fail here, with nothing
    /// queued) but the mined state, the store's live set, and every
    /// existing snapshot are untouched until [`commit`](Self::commit).
    pub fn stage(&mut self, batch: UpdateBatch) -> Result<()> {
        if !self.deletions && !batch.deletes.is_empty() {
            return Err(Error::DeletionsDisabled);
        }
        match &self.durable {
            Some(log) => {
                log.log_stage(&self.store.staging(), batch, fup_tidb::Admission::Block)?;
            }
            None => self.store.enqueue(batch)?,
        }
        Ok(())
    }

    /// A shareable, thread-safe staging handle: any number of producer
    /// threads can [`StageHandle::stage`] batches through it — with the
    /// same arrival-time validation as [`stage`](Self::stage) — while
    /// this session is borrowed (even mutably, mid-commit) elsewhere.
    /// Everything staged through handles joins the next
    /// [`commit`](Self::commit), in global arrival order. This is the
    /// producer side of [`crate::service::MaintainerService`].
    pub fn stage_handle(&self) -> StageHandle {
        StageHandle {
            staging: self.store.staging(),
            deletions: self.deletions,
            durable: self.durable.clone(),
        }
    }

    /// A copy of the batches staged so far, concatenated in arrival
    /// order.
    pub fn staged(&self) -> UpdateBatch {
        self.store.pending()
    }

    /// `true` if anything is staged.
    pub fn has_staged(&self) -> bool {
        self.store.has_pending()
    }

    /// Drops everything staged without applying it, returning the
    /// discarded batch. On a durable session the drop is logged as an
    /// abort boundary (best-effort: a storage failure here poisons the
    /// log, and an un-logged discard merely re-queues the batches on
    /// recovery — committed state is never affected).
    pub fn discard(&mut self) -> UpdateBatch {
        match self.durable.clone() {
            None => self.store.discard_pending(),
            Some(log) => {
                let entries = self.store.take_pending_entries();
                let tickets: Vec<u64> = entries.iter().map(|&(t, _)| t).collect();
                let merged = StagingArea::merge_entries(entries);
                self.store
                    .staging()
                    .release_deletes(merged.deletes.iter().copied());
                if !tickets.is_empty() {
                    let _ = log.log_boundary(&WalRecord::Abort { tickets });
                }
                merged
            }
        }
    }

    /// Applies everything staged as **one** maintenance round: pure
    /// insertions run the paper's FUP, batches with deletions run FUP2,
    /// and the [`UpdatePolicy`] may route oversized batches to a full
    /// re-mine. Returns what the round changed; on error the store and
    /// the mined state are left unchanged (the staged work is consumed
    /// either way).
    ///
    /// Committing with nothing staged is a no-op round: it bumps the
    /// version and reports no changes.
    ///
    /// On a durable session the round is acknowledged by a WAL commit
    /// boundary *after* it applies in memory; only an acknowledged round
    /// is guaranteed to survive recovery. A storage failure while
    /// acknowledging returns an error and poisons the session's log —
    /// recover from storage rather than trusting the in-memory state.
    pub fn commit(&mut self) -> Result<MaintenanceReport> {
        self.commit_bounded(None)
    }

    /// [`commit`](Self::commit) bounded to at most `max_ops` staged
    /// operations: applies the longest arrival-order prefix of whole
    /// batches within the bound as one maintenance round, leaving the
    /// rest staged (claims intact) for later rounds. A first batch
    /// larger than the bound travels alone, so the backlog always makes
    /// progress. `None` behaves exactly like [`commit`](Self::commit).
    /// This is what lets a service chunk an oversized backlog into
    /// bounded-latency rounds; ticket order is preserved within and
    /// across rounds.
    pub fn commit_bounded(&mut self, max_ops: Option<u64>) -> Result<MaintenanceReport> {
        match self.durable.clone() {
            None => {
                let entries = self.store.take_pending_entries_up_to(max_ops);
                self.commit_batch(StagingArea::merge_entries(entries))
            }
            Some(log) => self.commit_durable(&log, max_ops),
        }
    }

    fn commit_durable(
        &mut self,
        log: &Arc<DurableLog>,
        max_ops: Option<u64>,
    ) -> Result<MaintenanceReport> {
        let entries = self.store.take_pending_entries_up_to(max_ops);
        let tickets: Vec<u64> = entries.iter().map(|&(t, _)| t).collect();
        let merged = StagingArea::merge_entries(entries);
        match self.commit_batch(merged) {
            Ok(report) => {
                if let Err(boundary_err) = log.log_boundary(&WalRecord::Commit {
                    version: report.version,
                    tickets,
                }) {
                    // The boundary could not reach the WAL. If the log
                    // merely degraded (transient fault outlived its
                    // budget), a fresh checkpoint can still acknowledge
                    // the round: it embeds this round's post-state and
                    // the remaining backlog, superseding the suspect
                    // segment — and doubles as the heal. Only when that
                    // also fails is the round reported dropped.
                    if log.state() == crate::durable::LogState::Degraded
                        && self.write_durable_checkpoint(log).is_ok()
                    {
                        return Ok(report);
                    }
                    return Err(boundary_err);
                }
                if log.note_round() {
                    // A checkpoint failure degrades/poisons the log but
                    // the round itself is durably acknowledged — report
                    // success and let the next durable operation surface
                    // the state.
                    let _ = self.write_durable_checkpoint(log);
                }
                Ok(report)
            }
            Err(e) => {
                // The round failed and its batches are consumed (the store
                // rolled back). Mirror that durably so recovery does not
                // resurrect them as staged.
                if !tickets.is_empty() {
                    let _ = log.log_boundary(&WalRecord::Abort { tickets });
                }
                Err(e)
            }
        }
    }

    /// [`stage`](Self::stage) + [`commit`](Self::commit) in one call —
    /// note this also applies anything staged earlier.
    pub fn apply(&mut self, batch: UpdateBatch) -> Result<MaintenanceReport> {
        self.stage(batch)?;
        self.commit()
    }

    fn commit_batch(&mut self, batch: UpdateBatch) -> Result<MaintenanceReport> {
        for slot in &mut self.slots {
            let _ = slot.take_touched();
        }
        let batch_size = batch.inserts.len() as u64 + batch.deletes.len() as u64;
        if self
            .policy
            .should_remine(batch_size, self.store.len() as u64)
        {
            return self.commit_by_remine(batch);
        }
        let staged = self.stage_drained(batch)?;
        let pure_insert = staged.num_deleted() == 0;
        let use_fup = match self.updater {
            Updater::Auto => pure_insert,
            Updater::Fup => true,
            Updater::Fup2 => false,
        };
        if use_fup {
            debug_assert!(pure_insert, "deletions are rejected at stage time");
        }
        let outcome = match (&self.store, &staged) {
            (SessionStore::Flat(db), StagedAny::Flat(fs)) => {
                let slot = &mut self.slots[0];
                if use_fup {
                    Fup::with_config(self.config.clone()).update_with_index(
                        db,
                        &self.state.large,
                        fs.inserted(),
                        self.minsup,
                        slot,
                    )
                } else {
                    Fup2::with_config(self.config.clone()).update_with_index(
                        db,
                        &self.state.large,
                        fs.deleted(),
                        fs.inserted(),
                        self.minsup,
                        slot,
                    )
                }
            }
            (SessionStore::Sharded(db), StagedAny::Sharded(ss)) => {
                // Shard-parallel counting: one persistent index slot per
                // shard, per-shard supports merged by summation inside the
                // provider — bit-identical to the flat path because every
                // threshold decision gates on the same global sums.
                let mut provider = ShardProvider::new(db, ss, &mut self.slots);
                if use_fup {
                    Fup::with_config(self.config.clone()).update_with_provider(
                        db,
                        &self.state.large,
                        ss.inserted(),
                        self.minsup,
                        &mut provider,
                    )
                } else {
                    Fup2::with_config(self.config.clone()).update_with_provider(
                        db,
                        &self.state.large,
                        ss.deleted(),
                        ss.inserted(),
                        self.minsup,
                        &mut provider,
                    )
                }
            }
            _ => unreachable!("staged update does not match the store kind"),
        };
        let outcome = match outcome {
            Ok(o) => o,
            Err(e) => {
                // Abort re-appends the deleted rows at the end of their
                // (shard's) live set, so the scan order of every store —
                // or shard — that lost a row no longer matches its held
                // index.
                match &staged {
                    StagedAny::Flat(fs) => {
                        if fs.num_deleted() > 0 {
                            self.slots[0].clear();
                        }
                    }
                    StagedAny::Sharded(ss) => {
                        for (s, slot) in self.slots.iter_mut().enumerate() {
                            if !ss.shard_deleted(s).is_empty() {
                                slot.clear();
                            }
                        }
                    }
                }
                self.store.abort(staged);
                return Err(e);
            }
        };
        let algorithm = if use_fup { "fup" } else { "fup2" };
        Ok(self.finish_commit(staged, outcome.large, algorithm, outcome.stats))
    }

    /// Applies a batch by committing it and re-mining from scratch — the
    /// path [`UpdatePolicy`] routes to for very large batches.
    /// Two-phase-stages a batch drained from the staging area. The
    /// drained batch owns the staging claims for its deletes, so on a
    /// validation failure — which consumes the batch — those claims are
    /// released here (their tids become claimable again).
    fn stage_drained(&mut self, batch: UpdateBatch) -> Result<StagedAny> {
        let claimed: Vec<Tid> = batch.deletes.clone();
        match self.store.stage(batch) {
            Ok(staged) => Ok(staged),
            Err(e) => {
                self.store.staging().release_deletes(claimed);
                Err(e.into())
            }
        }
    }

    fn commit_by_remine(&mut self, batch: UpdateBatch) -> Result<MaintenanceReport> {
        let staged = self.stage_drained(batch)?;
        self.align_index(&staged);
        self.note_shard_ops(&staged);
        let (_seg, inserted_tids) = self.store.commit(staged);
        let (outcome, built) = Apriori::with_config(AprioriConfig {
            engine: self.config.engine.clone(),
            ..Default::default()
        })
        .run_with_index(&self.store, self.minsup);
        if let Some(idx) = built {
            // The re-mine engaged vertical counting: its index covers
            // exactly the just-committed store, so keep it for the next
            // incremental round instead of whatever the slot held — on a
            // flat store only, since the global positional index cannot
            // be split across shards.
            if matches!(self.store, SessionStore::Flat(_)) {
                self.slots[0].adopt(idx);
            }
        }
        Ok(self.publish(
            outcome.large,
            "apriori-remine",
            outcome.stats,
            inserted_tids,
        ))
    }

    /// Commits `staged` and publishes the round's mined state.
    fn finish_commit(
        &mut self,
        staged: StagedAny,
        new_large: LargeItemsets,
        algorithm: &'static str,
        stats: MiningStats,
    ) -> MaintenanceReport {
        self.align_index(&staged);
        self.note_shard_ops(&staged);
        let (_seg, inserted_tids) = self.store.commit(staged);
        self.publish(new_large, algorithm, stats, inserted_tids)
    }

    /// Charges a committed round's ops to the per-shard gauges.
    fn note_shard_ops(&mut self, staged: &StagedAny) {
        match staged {
            StagedAny::Flat(fs) => {
                self.shard_ops[0] += fs.inserted().num_transactions() + fs.num_deleted();
            }
            StagedAny::Sharded(ss) => {
                for (s, ops) in self.shard_ops.iter_mut().enumerate() {
                    *ops += ss.shard_inserted(s).num_transactions()
                        + ss.shard_deleted(s).num_transactions();
                }
            }
        }
    }

    /// Per-shard health gauges (committed ops, routed backlog, state)
    /// for [`HealthReport::shards`](crate::HealthReport::shards). An
    /// in-process session always reports `"up"`; backlog is the staged
    /// batches routed prospectively through the shard spec (everything
    /// lands on shard 0 for a flat store).
    pub fn shard_health(&self) -> Vec<ShardHealth> {
        let n = self.store.num_shards();
        let mut backlog = vec![0u64; n];
        let pending = fup_tidb::StagingArea::merge_entries(self.store.staging().entries_snapshot());
        match &self.store {
            SessionStore::Flat(_) => backlog[0] = pending.num_ops(),
            SessionStore::Sharded(db) => {
                let spec = db.spec();
                let watermark = self.store.watermark();
                for i in 0..pending.inserts.len() as u64 {
                    backlog[spec.shard_of(Tid(watermark + i))] += 1;
                }
                for &tid in &pending.deletes {
                    backlog[spec.shard_of(tid)] += 1;
                }
            }
        }
        (0..n)
            .map(|s| ShardHealth {
                shard: s,
                ops: self.shard_ops[s],
                backlog: backlog[s],
                state: "up",
            })
            .collect()
    }

    /// Keeps the persistent index slots consistent with the store the
    /// round is about to commit: for every slot the round's counting
    /// never touched, an insert-only (shard-)round extends the held index
    /// with the (shard's) insert side — one cheap delta scan — and a
    /// (shard-)round with deletions, whose `swap_remove` staging
    /// reordered that live set, drops it. The sharded arm decides per
    /// shard, so a delete landing on one shard never invalidates the
    /// others.
    fn align_index(&mut self, staged: &StagedAny) {
        match staged {
            StagedAny::Flat(fs) => {
                if !self.slots[0].take_touched() {
                    if fs.num_deleted() == 0 {
                        self.slots[0].extend_with(fs.inserted(), &self.config.engine);
                    } else {
                        self.slots[0].clear();
                    }
                }
            }
            StagedAny::Sharded(ss) => {
                for (s, slot) in self.slots.iter_mut().enumerate() {
                    if !slot.take_touched() {
                        if ss.shard_deleted(s).is_empty() {
                            slot.extend_with(ss.shard_inserted(s), &self.config.engine);
                        } else {
                            slot.clear();
                        }
                    }
                }
            }
        }
    }

    fn publish(
        &mut self,
        new_large: LargeItemsets,
        algorithm: &'static str,
        stats: MiningStats,
        inserted_tids: Vec<Tid>,
    ) -> MaintenanceReport {
        let new_rules = generate_rules(&new_large, self.minconf);
        let version = self.state.version + 1;
        let report = MaintenanceReport {
            algorithm,
            version,
            itemsets: ItemsetDiff::between(&self.state.large, &new_large),
            rules: RuleDiff::between(&self.state.rules, &new_rules),
            inserted_tids,
            num_transactions: self.store.len() as u64,
            stats,
        };
        self.state = Arc::new(SnapshotState::new(
            version,
            self.store.len() as u64,
            self.minsup,
            self.minconf,
            new_large,
            new_rules,
        ));
        report
    }

    // ------------------------------------------------------ reading --

    /// Takes a version-stamped snapshot of the current rules and
    /// itemsets — an `Arc` clone, valid (and internally consistent)
    /// forever, no matter how many commits follow.
    pub fn snapshot(&self) -> RuleSnapshot {
        RuleSnapshot {
            inner: Arc::clone(&self.state),
        }
    }

    /// The current shared state — the service layer publishes this into
    /// its wait-free snapshot cell after each commit.
    pub(crate) fn state_arc(&self) -> Arc<SnapshotState> {
        Arc::clone(&self.state)
    }

    /// The current state version (0 after bootstrap, +1 per commit).
    pub fn version(&self) -> u64 {
        self.state.version
    }

    /// The current strong rules.
    pub fn rules(&self) -> &RuleSet {
        &self.state.rules
    }

    /// The current large itemsets with support counts.
    pub fn large_itemsets(&self) -> &LargeItemsets {
        &self.state.large
    }

    /// The underlying store (read access) — flat or sharded; see
    /// [`SessionStore`].
    pub fn store(&self) -> &SessionStore {
        &self.store
    }

    /// Number of live transactions.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The configured minimum support.
    pub fn minsup(&self) -> MinSupport {
        self.minsup
    }

    /// The configured minimum confidence.
    pub fn minconf(&self) -> MinConfidence {
        self.minconf
    }

    /// The session's FUP configuration.
    pub fn config(&self) -> &FupConfig {
        &self.config
    }

    /// The configured incremental updater.
    pub fn updater(&self) -> Updater {
        self.updater
    }

    /// The active update policy.
    pub fn policy(&self) -> UpdatePolicy {
        self.policy
    }

    /// Counters for the persistent vertical index: how often it was built
    /// from scratch vs extended in place across the session's rounds.
    /// On a sharded session the counters sum over the per-shard slots and
    /// `resident` is `true` while *any* shard holds an index.
    pub fn index_stats(&self) -> IndexStats {
        IndexStats {
            builds: self.slots.iter().map(|s| s.builds()).sum(),
            extends: self.slots.iter().map(|s| s.extends()).sum(),
            resident: self.slots.iter().any(|s| s.has_index()),
        }
    }

    // ---------------------------------------------- administration --

    /// Sets the incremental-vs-remine policy, rejecting policies the
    /// session's configuration cannot honor (negative ratios; re-mining
    /// policies combined with a `max_k` cap the re-mine would ignore).
    pub fn set_policy(&mut self, policy: UpdatePolicy) -> std::result::Result<(), BuildError> {
        validate_policy(policy, &self.config)?;
        self.policy = policy;
        Ok(())
    }

    /// Re-mines from scratch (Apriori) and replaces the maintained state —
    /// an escape hatch for threshold changes. Bumps the state version
    /// (logged as an empty commit boundary on a durable session, so
    /// replayed version numbers stay aligned).
    pub fn remine(&mut self) -> &LargeItemsets {
        let (outcome, built) = Apriori::with_config(AprioriConfig {
            engine: self.config.engine.clone(),
            ..Default::default()
        })
        .run_with_index(&self.store, self.minsup);
        if let Some(idx) = built {
            // A global positional index cannot be split across shards.
            if matches!(self.store, SessionStore::Flat(_)) {
                self.slots[0].adopt(idx);
            }
        }
        let report = self.publish(outcome.large, "apriori-remine", outcome.stats, Vec::new());
        if let Some(log) = self.durable.clone() {
            let _ = log.log_boundary(&WalRecord::Commit {
                version: report.version,
                tickets: Vec::new(),
            });
            if log.note_round() {
                let _ = self.write_durable_checkpoint(&log);
            }
        }
        &self.state.large
    }

    // ------------------------------------------------------ durability --

    /// `true` if this session writes a WAL and checkpoints (built with
    /// [`MaintainerBuilder::build_durable`] or recovered).
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Forces a checkpoint now (instead of waiting for the policy's
    /// cadence), returning its sequence number. Fails with
    /// [`Error::NotDurable`] on an in-memory session.
    pub fn checkpoint(&mut self) -> Result<u64> {
        let log = self.durable.clone().ok_or(Error::NotDurable)?;
        self.write_durable_checkpoint(&log)
    }

    /// The durable log's health, or `None` on an in-memory session. See
    /// [`LogState`](crate::durable::LogState) for what each state means.
    pub fn durability_state(&self) -> Option<crate::durable::LogState> {
        self.durable.as_ref().map(|log| log.state())
    }

    /// Attempts to heal a [`Degraded`](crate::durable::LogState::Degraded)
    /// durable log by installing a fresh checkpoint: the checkpoint
    /// embeds the session state *and* the staged backlog and rotates to
    /// a fresh WAL segment, so one atomic install supersedes whatever
    /// the suspect segment holds — nothing acknowledged is lost, and
    /// every staged record is re-logged.
    ///
    /// Returns `Ok(true)` when a heal was performed, `Ok(false)` when
    /// there was nothing to heal (healthy log, or an in-memory session),
    /// and an error when the probe failed — [`Error::Recovery`] for a
    /// poisoned log (only recovery helps), or the storage error when the
    /// checkpoint itself failed (the log stays degraded; probe again
    /// later).
    pub fn try_heal(&mut self) -> Result<bool> {
        let Some(log) = self.durable.clone() else {
            return Ok(false);
        };
        match log.state() {
            crate::durable::LogState::Healthy => Ok(false),
            crate::durable::LogState::Degraded => {
                self.write_durable_checkpoint(&log)?;
                Ok(true)
            }
            crate::durable::LogState::Poisoned => Err(Error::Recovery {
                reason: "the durable log is poisoned by a permanent storage failure; \
                         healing cannot help — recover from storage"
                    .into(),
            }),
        }
    }

    /// Everything needed to rebuild this session from its own storage —
    /// the committer supervisor uses this to respawn through the
    /// recovery path after a panic. `None` on an in-memory session.
    pub(crate) fn recovery_spec(&self) -> Option<RecoverySpec> {
        let log = self.durable.as_ref()?;
        Some(RecoverySpec {
            builder: MaintainerBuilder {
                minsup: Some(self.minsup),
                minconf: Some(self.minconf),
                // `config` is already fully resolved, so the fine-grained
                // override slots stay empty.
                config: self.config.clone(),
                threads: None,
                gen_threads: None,
                chunk_size: None,
                backend: None,
                policy: self.policy,
                updater: self.updater,
                deletions: self.deletions,
                durability: *log.policy(),
                shards: self.store.shard_spec().cloned(),
            },
            storage: Arc::clone(log.storage()),
        })
    }

    /// Encodes and installs the next checkpoint on `log`. Encoding runs
    /// inside the log's checkpoint critical section so the embedded
    /// backlog stays consistent with concurrent producer admissions
    /// (see [`DurableLog::checkpoint_with`]).
    fn write_durable_checkpoint(&mut self, log: &Arc<DurableLog>) -> Result<u64> {
        log.checkpoint_with(|seq| self.encode_checkpoint_image(seq))
    }

    /// Serialises the session's current durable image as checkpoint
    /// `seq`: the tid-ordered live set, the live-tid view, the maintained
    /// itemsets, the staged backlog, and — while scan order still equals
    /// tid order — the resident vertical index.
    fn encode_checkpoint_image(&self, seq: u64) -> Result<Vec<u8>> {
        let mut live: Vec<(Tid, Transaction)> =
            self.store.iter().map(|(tid, t)| (tid, t.clone())).collect();
        live.sort_unstable_by_key(|&(tid, _)| tid);
        let view = self.store.live_view();
        let backlog = self.store.staging().entries_snapshot();
        // Only a flat store's index is positional over the whole live set;
        // sharded sessions checkpoint without one and rebuild per shard
        // after recovery.
        let index = match &self.store {
            SessionStore::Flat(_) if self.store.is_tid_ordered() => self.slots[0]
                .resident_index()
                .filter(|idx| idx.num_transactions() == self.store.len() as u64),
            _ => None,
        };
        durable::encode_checkpoint(
            seq,
            self.state.version,
            (self.minsup.num(), self.minsup.den()),
            (self.minconf.num(), self.minconf.den()),
            self.store.watermark(),
            self.store.next_segment(),
            &view.tombstones_sorted(),
            &live,
            &self.state.large,
            &backlog,
            index,
        )
        .map_err(Error::Store)
    }

    /// Verifies that the incrementally-maintained itemsets equal a full
    /// re-mine, returning [`Error::Inconsistent`] with one line per
    /// divergence otherwise. Intended for tests and audits; scans the
    /// whole store.
    pub fn verify_consistency(&self) -> Result<()> {
        let fresh = Apriori::with_config(AprioriConfig {
            engine: self.config.engine.clone(),
            ..Default::default()
        })
        .run(&self.store, self.minsup)
        .large;
        if self.state.large.same_itemsets(&fresh) {
            Ok(())
        } else {
            Err(Error::Inconsistent {
                differences: self.state.large.diff(&fresh),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fup_mining::GenConfig;

    fn tx(items: &[u32]) -> Transaction {
        Transaction::from_items(items.iter().copied())
    }

    fn s(items: &[u32]) -> Itemset {
        Itemset::from_items(items.iter().copied())
    }

    fn history() -> Vec<Transaction> {
        vec![
            tx(&[1, 2, 3]),
            tx(&[1, 2]),
            tx(&[2, 3]),
            tx(&[1, 3]),
            tx(&[4, 5]),
        ]
    }

    fn session() -> Maintainer {
        Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .build(history())
            .unwrap()
    }

    #[test]
    fn builder_requires_thresholds() {
        let e = Maintainer::builder().build(history()).unwrap_err();
        assert_eq!(e, BuildError::MissingMinSupport);
        let e = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .build(history())
            .unwrap_err();
        assert_eq!(e, BuildError::MissingMinConfidence);
    }

    #[test]
    fn builder_rejects_bad_combinations() {
        let base = || {
            Maintainer::builder()
                .min_support(MinSupport::percent(40))
                .min_confidence(MinConfidence::percent(60))
        };
        assert_eq!(
            base().threads(0).build(history()).unwrap_err(),
            BuildError::ZeroThreads
        );
        assert_eq!(
            base().gen_threads(0).build(history()).unwrap_err(),
            BuildError::ZeroThreads
        );
        assert_eq!(
            base().chunk_size(0).build(history()).unwrap_err(),
            BuildError::ZeroChunkSize
        );
        assert_eq!(
            base()
                .dhp_hash(true)
                .hash_buckets(0)
                .build(history())
                .unwrap_err(),
            BuildError::ZeroHashBuckets
        );
        assert_eq!(
            base().max_k(0).build(history()).unwrap_err(),
            BuildError::ZeroMaxK
        );
        assert_eq!(
            base()
                .policy(UpdatePolicy::RemineOverRatio(-2.0))
                .build(history())
                .unwrap_err(),
            BuildError::InvalidRemineRatio(-2.0)
        );
        assert_eq!(
            base()
                .max_k(3)
                .policy(UpdatePolicy::AlwaysRemine)
                .build(history())
                .unwrap_err(),
            BuildError::RemineIgnoresMaxK
        );
        assert_eq!(
            base().updater(Updater::Fup).build(history()).unwrap_err(),
            BuildError::DeletionsWithoutFup2
        );
        // The same pin is fine once the workload is declared insert-only.
        let m = base()
            .updater(Updater::Fup)
            .deletions(false)
            .build(history())
            .unwrap();
        assert_eq!(m.updater(), Updater::Fup);
    }

    #[test]
    fn builder_threads_flow_into_engine_and_gen() {
        let m = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .threads(3)
            .chunk_size(128)
            .backend(CountingBackend::HashTree)
            .reduce_db(false)
            .build(history())
            .unwrap();
        assert_eq!(m.config().engine.threads, 3);
        assert_eq!(m.config().engine.gen, GenConfig { threads: 3 });
        assert_eq!(m.config().engine.chunk_size, 128);
        assert_eq!(m.config().engine.backend, CountingBackend::HashTree);
        assert!(!m.config().reduce_db);
    }

    #[test]
    fn builder_later_calls_win_over_earlier_ones() {
        // A wholesale engine() after fine-grained calls discards them...
        let m = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .threads(2)
            .backend(CountingBackend::Vertical)
            .engine(EngineConfig::with_threads(8))
            .build(history())
            .unwrap();
        assert_eq!(m.config().engine.threads, 8);
        assert_eq!(m.config().engine.backend, CountingBackend::default());
        // ...and fine-grained calls after it override individual fields.
        let m = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .engine(EngineConfig::with_threads(8))
            .threads(2)
            .build(history())
            .unwrap();
        assert_eq!(m.config().engine.threads, 2);
    }

    #[test]
    fn stage_commit_and_discard_decouple_arrival_from_application() {
        let mut m = session();
        let v0 = m.version();
        m.stage(UpdateBatch::insert_only(vec![tx(&[4, 5]), tx(&[4, 5])]))
            .unwrap();
        m.stage(UpdateBatch::insert_only(vec![tx(&[4, 5, 1])]))
            .unwrap();
        // Nothing applied yet: reads and the store are untouched.
        assert_eq!(m.len(), 5);
        assert_eq!(m.version(), v0);
        assert!(m.has_staged());
        assert_eq!(m.staged().inserts.len(), 3);

        let report = m.commit().unwrap();
        assert_eq!(report.algorithm, "fup");
        assert_eq!(report.version, v0 + 1);
        assert_eq!(report.num_transactions, 8);
        assert_eq!(report.inserted_tids.len(), 3);
        assert!(report.itemsets.emerged.contains(&s(&[4, 5])));
        assert!(!m.has_staged());
        m.verify_consistency().unwrap();

        // Discard drops staged work without touching anything.
        m.stage(UpdateBatch::insert_only(vec![tx(&[9, 9])]))
            .unwrap();
        let dropped = m.discard();
        assert_eq!(dropped.inserts.len(), 1);
        assert_eq!(m.len(), 8);
        assert_eq!(m.version(), v0 + 1);
    }

    #[test]
    fn snapshots_are_versioned_and_survive_commits() {
        let mut m = session();
        let snap0 = m.snapshot();
        assert_eq!(snap0.version(), 0);
        assert_eq!(snap0.num_transactions(), 5);
        let rules_before = snap0.rules().clone();

        m.apply(UpdateBatch::insert_only(vec![
            tx(&[4, 5]),
            tx(&[4, 5]),
            tx(&[4, 5, 1]),
        ]))
        .unwrap();

        // The old snapshot still reads its own consistent state...
        assert_eq!(snap0.version(), 0);
        assert_eq!(snap0.num_transactions(), 5);
        assert_eq!(snap0.rules(), &rules_before);
        assert_eq!(snap0.support_of(&s(&[1, 2])), Some(2));
        assert_eq!(snap0.support_of(&s(&[4, 5])), None); // 1/5 < 40 %
                                                         // ...while a fresh snapshot sees the new version.
        let snap1 = m.snapshot();
        assert_eq!(snap1.version(), 1);
        assert_eq!(snap1.num_transactions(), 8);
        assert_eq!(snap1.support_of(&s(&[4, 5])), Some(4));
        assert_eq!(snap1.min_support(), MinSupport::percent(40));
        assert_eq!(snap1.min_confidence(), MinConfidence::percent(60));
    }

    #[test]
    fn snapshot_query_layer_matches_raw_ruleset() {
        let mut m = session();
        m.apply(UpdateBatch::insert_only(vec![
            tx(&[4, 5]),
            tx(&[4, 5]),
            tx(&[4, 5]),
        ]))
        .unwrap();
        let snap = m.snapshot();

        for rule in snap.rules().rules() {
            let about = snap.rules_about(rule.antecedent.items()[0]);
            assert!(about.contains(&rule), "{rule}");
            let with = snap.rules_with_antecedent(&rule.antecedent);
            assert!(with.iter().all(|r| r.antecedent == rule.antecedent));
            assert!(with.contains(&rule));
        }
        // rules_about covers consequent mentions too.
        for rule in snap.rules().rules() {
            let about = snap.rules_about(rule.consequent.items()[0]);
            assert!(about.contains(&rule));
        }
        // top-k is sorted by confidence and bounded by the rule count.
        let top = snap.top_k_by_confidence(3);
        assert!(top.len() <= 3);
        for w in top.windows(2) {
            assert!(w[0].confidence() >= w[1].confidence());
        }
        let all = snap.top_k_by_confidence(usize::MAX);
        assert_eq!(all.len(), snap.rules().len());
        // Unknown lookups are empty, not panics.
        assert!(snap.rules_about(ItemId(999)).is_empty());
        assert!(snap.rules_with_antecedent(&s(&[77, 78])).is_empty());
        assert!(snap.rules_with_antecedent(&s(&[])).is_empty());
        assert_eq!(snap.support_of(&s(&[77])), None);
    }

    #[test]
    fn deletions_route_to_fup2_and_empty_commit_is_noop_round() {
        let mut m = session();
        let tid0 = m.store().iter().next().unwrap().0;
        let report = m
            .apply(UpdateBatch {
                inserts: vec![tx(&[4, 5])],
                deletes: vec![tid0],
            })
            .unwrap();
        assert_eq!(report.algorithm, "fup2");
        assert_eq!(report.num_transactions, 5);
        m.verify_consistency().unwrap();

        let v = m.version();
        let report = m.commit().unwrap();
        assert_eq!(report.version, v + 1);
        assert!(report.itemsets.is_unchanged());
        assert!(report.rules.is_unchanged());
    }

    #[test]
    fn deletions_disabled_sessions_reject_delete_batches() {
        let mut m = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .deletions(false)
            .build(history())
            .unwrap();
        let tid0 = m.store().iter().next().unwrap().0;
        let err = m.stage(UpdateBatch::delete_only(vec![tid0])).unwrap_err();
        assert_eq!(err, Error::DeletionsDisabled);
        assert!(!m.has_staged());
        // Inserts still flow.
        m.apply(UpdateBatch::insert_only(vec![tx(&[1, 2])]))
            .unwrap();
        m.verify_consistency().unwrap();
    }

    #[test]
    fn failed_commit_leaves_state_and_version_intact() {
        let mut m = session();
        let v = m.version();
        let rules_before = m.rules().len();
        // Arrival-time validation: unknown tid fails at stage.
        let err = m
            .stage(UpdateBatch::delete_only(vec![Tid(12345)]))
            .unwrap_err();
        assert!(matches!(err, Error::Store(_)));
        assert_eq!(m.len(), 5);
        assert_eq!(m.version(), v);
        assert_eq!(m.rules().len(), rules_before);
        m.verify_consistency().unwrap();
    }

    #[test]
    fn set_policy_validates_and_routes() {
        let mut m = session();
        assert_eq!(
            m.set_policy(UpdatePolicy::RemineOverRatio(-1.0))
                .unwrap_err(),
            BuildError::InvalidRemineRatio(-1.0)
        );
        assert_eq!(m.policy(), UpdatePolicy::AlwaysIncremental);
        m.set_policy(UpdatePolicy::RemineOverRatio(2.0)).unwrap();
        assert_eq!(m.policy(), UpdatePolicy::RemineOverRatio(2.0));
        // Small batch: incremental; huge batch: re-mine.
        let r = m
            .apply(UpdateBatch::insert_only(vec![tx(&[1, 2])]))
            .unwrap();
        assert_eq!(r.algorithm, "fup");
        let big: Vec<Transaction> = (0..13).map(|_| tx(&[1, 2, 9])).collect();
        let r = m.apply(UpdateBatch::insert_only(big)).unwrap();
        assert_eq!(r.algorithm, "apriori-remine");
        m.verify_consistency().unwrap();
        assert!(m.large_itemsets().contains(&s(&[1, 2, 9])));
        // A max_k session cannot take a re-mining policy.
        let mut capped = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .max_k(2)
            .build(history())
            .unwrap();
        assert_eq!(
            capped.set_policy(UpdatePolicy::AlwaysRemine).unwrap_err(),
            BuildError::RemineIgnoresMaxK
        );
    }

    #[test]
    fn pinned_fup2_handles_insert_only_batches() {
        let mut m = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .updater(Updater::Fup2)
            .build(history())
            .unwrap();
        let r = m
            .apply(UpdateBatch::insert_only(vec![tx(&[1, 2])]))
            .unwrap();
        assert_eq!(r.algorithm, "fup2");
        m.verify_consistency().unwrap();
    }

    #[test]
    fn persistent_index_extends_on_insert_only_commits() {
        let mut m = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .backend(CountingBackend::Vertical)
            .build(history())
            .unwrap();
        // Pinned-vertical sessions seed the index at bootstrap.
        let stats = m.index_stats();
        assert_eq!((stats.builds, stats.extends), (1, 0));
        assert!(stats.resident);

        for round in 0..3 {
            m.apply(UpdateBatch::insert_only(vec![tx(&[1, 2]), tx(&[2, 3])]))
                .unwrap();
            m.verify_consistency().unwrap();
            let stats = m.index_stats();
            assert_eq!(
                (stats.builds, stats.extends),
                (1, round + 1),
                "round {round} should extend, not rebuild"
            );
        }

        // A deletion reorders the live set: the index is rebuilt, not
        // poisoned.
        let tid0 = m.store().iter().next().unwrap().0;
        m.apply(UpdateBatch::delete_only(vec![tid0])).unwrap();
        m.verify_consistency().unwrap();
        assert_eq!(m.index_stats().builds, 2);
        // And insert-only rounds extend again afterwards.
        let extends = m.index_stats().extends;
        m.apply(UpdateBatch::insert_only(vec![tx(&[2, 3])]))
            .unwrap();
        m.verify_consistency().unwrap();
        assert_eq!(m.index_stats().extends, extends + 1);
    }

    #[test]
    fn remine_bumps_version_and_resets_state() {
        let mut m = session();
        m.apply(UpdateBatch::insert_only(vec![tx(&[7, 8]), tx(&[7, 8])]))
            .unwrap();
        let before = m.large_itemsets().clone();
        let v = m.version();
        m.remine();
        assert!(m.large_itemsets().same_itemsets(&before));
        assert_eq!(m.version(), v + 1);
    }

    #[test]
    fn empty_bootstrap() {
        let m = Maintainer::builder()
            .min_support(MinSupport::percent(50))
            .min_confidence(MinConfidence::percent(50))
            .build(Vec::new())
            .unwrap();
        assert!(m.is_empty());
        assert!(m.rules().is_empty());
        assert_eq!(m.snapshot().version(), 0);
    }

    // ------------------------------------------------- durability --

    fn mem() -> Arc<fup_tidb::MemStorage> {
        Arc::new(fup_tidb::MemStorage::new())
    }

    fn durable_session(storage: Arc<fup_tidb::MemStorage>) -> Maintainer {
        Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .build_durable(history(), storage)
            .unwrap()
    }

    fn assert_same_published_state(a: &Maintainer, b: &Maintainer) {
        assert_eq!(a.version(), b.version(), "state versions diverge");
        assert_eq!(a.len(), b.len(), "live set sizes diverge");
        assert!(
            a.large_itemsets().same_itemsets(b.large_itemsets()),
            "itemsets diverge: {:?}",
            a.large_itemsets().diff(b.large_itemsets())
        );
        assert_eq!(a.rules().len(), b.rules().len(), "rule counts diverge");
        let mut live_a: Vec<_> = a.store().iter().map(|(t, x)| (t, x.clone())).collect();
        let mut live_b: Vec<_> = b.store().iter().map(|(t, x)| (t, x.clone())).collect();
        live_a.sort_unstable_by_key(|&(t, _)| t);
        live_b.sort_unstable_by_key(|&(t, _)| t);
        assert_eq!(live_a, live_b, "live transactions diverge");
    }

    #[test]
    fn build_durable_writes_initial_checkpoint_and_refuses_nonempty_storage() {
        let storage = mem();
        let m = durable_session(Arc::clone(&storage));
        assert!(m.is_durable());
        let names = storage.list().unwrap();
        assert!(names.contains(&"ckpt-00000000".to_string()), "{names:?}");
        assert!(names.contains(&"wal-00000000".to_string()), "{names:?}");
        let err = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .build_durable(history(), storage)
            .unwrap_err();
        assert!(matches!(err, Error::Recovery { .. }));
    }

    #[test]
    fn recover_reproduces_committed_state_and_requeues_staged_batches() {
        let storage = mem();
        let mut m = durable_session(Arc::clone(&storage));
        m.stage(UpdateBatch::insert_only(vec![tx(&[1, 2]), tx(&[2, 3])]))
            .unwrap();
        m.commit().unwrap();
        m.stage(UpdateBatch::delete_only(vec![Tid(4)])).unwrap();
        m.commit().unwrap();
        // Staged but never committed: must come back as staged.
        m.stage(UpdateBatch::insert_only(vec![tx(&[4, 5])]))
            .unwrap();
        let expected_version = m.version();
        let expected_pending = m.staged();

        // "Crash": drop the session, keep only the storage bytes.
        let image = Arc::new(fup_tidb::MemStorage::from_files(storage.files()));
        drop(m);
        let (r, report) = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .recover(Arc::clone(&image) as Arc<dyn DurableStorage>)
            .unwrap();
        assert_eq!(report.version, expected_version);
        assert_eq!(report.replayed_rounds, 2);
        assert_eq!(report.restaged_batches, 1);
        assert!(report.wal_tail_dropped.is_none());
        assert_eq!(r.staged(), expected_pending);
        assert_eq!(r.version(), expected_version);
        r.verify_consistency().unwrap();
    }

    #[test]
    fn recovered_session_matches_an_uncrashed_run_after_more_commits() {
        // Reference run, never crashed.
        let storage_a = mem();
        let mut a = durable_session(Arc::clone(&storage_a));
        // Crashing run with the same inputs.
        let storage_b = mem();
        let mut b = durable_session(Arc::clone(&storage_b));

        for m in [&mut a, &mut b] {
            m.stage(UpdateBatch::insert_only(vec![tx(&[1, 2, 3]), tx(&[3])]))
                .unwrap();
            m.commit().unwrap();
            m.stage(UpdateBatch {
                inserts: vec![tx(&[2, 3])],
                deletes: vec![Tid(0)],
            })
            .unwrap();
            m.commit().unwrap();
        }
        let image = Arc::new(fup_tidb::MemStorage::from_files(storage_b.files()));
        drop(b);
        let (mut r, _) = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .recover(image as Arc<dyn DurableStorage>)
            .unwrap();
        assert_same_published_state(&a, &r);

        // The recovered session keeps working — and stays equal to the
        // uncrashed one round for round.
        for m in [&mut a, &mut r] {
            m.stage(UpdateBatch::insert_only(vec![tx(&[1, 3]), tx(&[1, 2])]))
                .unwrap();
            m.commit().unwrap();
        }
        assert_same_published_state(&a, &r);
        r.verify_consistency().unwrap();
    }

    #[test]
    fn recover_rejects_mismatched_thresholds() {
        let storage = mem();
        let _m = durable_session(Arc::clone(&storage));
        let err = Maintainer::builder()
            .min_support(MinSupport::percent(50))
            .min_confidence(MinConfidence::percent(60))
            .recover(storage as Arc<dyn DurableStorage>)
            .unwrap_err();
        assert!(matches!(err, Error::Recovery { .. }), "{err:?}");
    }

    #[test]
    fn explicit_checkpoint_requires_durability() {
        let mut m = session();
        assert!(!m.is_durable());
        assert!(matches!(m.checkpoint(), Err(Error::NotDurable)));

        let storage = mem();
        let mut d = durable_session(Arc::clone(&storage));
        let seq = d.checkpoint().unwrap();
        assert_eq!(seq, 1);
        assert!(storage
            .list()
            .unwrap()
            .contains(&"ckpt-00000001".to_string()));
    }

    #[test]
    fn checkpoint_cadence_rotates_wal_segments() {
        let storage = mem();
        let mut m = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .durability(DurabilityPolicy {
                checkpoint_every_rounds: 2,
                retain_checkpoints: 2,
                ..Default::default()
            })
            .build_durable(history(), Arc::clone(&storage) as Arc<dyn DurableStorage>)
            .unwrap();
        for i in 0..4u32 {
            m.stage(UpdateBatch::insert_only(vec![tx(&[1, 2 + i])]))
                .unwrap();
            m.commit().unwrap();
        }
        let names = storage.list().unwrap();
        assert!(names.contains(&"ckpt-00000002".to_string()), "{names:?}");
        assert!(
            !names.contains(&"ckpt-00000000".to_string()),
            "initial pair beyond retention must be collected: {names:?}"
        );
        // Recovery from the rotated layout still works.
        let image = Arc::new(fup_tidb::MemStorage::from_files(storage.files()));
        let (r, report) = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .recover(image as Arc<dyn DurableStorage>)
            .unwrap();
        assert_eq!(r.version(), m.version());
        assert_eq!(report.replayed_rounds, 0, "checkpoint covers every round");
        r.verify_consistency().unwrap();
    }

    #[test]
    fn durable_commit_failure_poisons_the_session() {
        let storage = mem();
        let mut m = durable_session(Arc::clone(&storage));
        m.stage(UpdateBatch::insert_only(vec![tx(&[7, 8])]))
            .unwrap();
        storage.fail_after(0, 0); // every storage op now dies
        let err = m.commit().unwrap_err();
        assert!(
            matches!(err, Error::Store(fup_tidb::Error::Io { .. })),
            "{err:?}"
        );
        storage.revive();
        // The log is poisoned: later durable work fails fast.
        let err = m
            .stage(UpdateBatch::insert_only(vec![tx(&[9])]))
            .unwrap_err();
        assert!(matches!(err, Error::Recovery { .. }), "{err:?}");
    }

    #[test]
    fn remine_logs_a_version_boundary() {
        let storage = mem();
        let mut m = durable_session(Arc::clone(&storage));
        m.remine();
        assert_eq!(m.version(), 1);
        let image = Arc::new(fup_tidb::MemStorage::from_files(storage.files()));
        let (r, _) = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .recover(image as Arc<dyn DurableStorage>)
            .unwrap();
        assert_eq!(r.version(), 1, "the re-mine's version bump must survive");
    }

    // -------------------------------------------------- sharding --

    #[test]
    fn builder_rejects_invalid_shard_specs() {
        let e = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .shards(0)
            .build(history())
            .unwrap_err();
        assert_eq!(
            e,
            BuildError::InvalidShardSpec(fup_tidb::SpecError::NoShards)
        );
        let e = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .shard_spec(ShardSpec::ranges([
                fup_tidb::TidRange::new(0, 100),
                fup_tidb::TidRange::new(50, u64::MAX),
            ]))
            .build(history())
            .unwrap_err();
        assert!(matches!(
            e,
            BuildError::InvalidShardSpec(fup_tidb::SpecError::Overlap { .. })
        ));
    }

    fn sharded_session(shards: u32) -> Maintainer {
        Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .shard_spec(ShardSpec::striped_with(shards, 2))
            .build(history())
            .unwrap()
    }

    #[test]
    fn sharded_session_matches_flat_round_for_round() {
        let mut flat = session();
        let mut sharded = sharded_session(3);
        assert_eq!(sharded.store().num_shards(), 3);
        // Bootstrap state already agrees.
        assert!(flat
            .large_itemsets()
            .same_itemsets(sharded.large_itemsets()));

        // Insert-only round, then a cross-shard delete round (tids 1 and 4
        // live on different stripes), then a mixed round.
        let rounds: Vec<UpdateBatch> = vec![
            UpdateBatch::insert_only(vec![tx(&[1, 2]), tx(&[2, 3]), tx(&[1, 3, 5])]),
            UpdateBatch::delete_only(vec![Tid(1), Tid(4)]),
            UpdateBatch {
                inserts: vec![tx(&[2, 3, 5]), tx(&[1, 2])],
                deletes: vec![Tid(0)],
            },
        ];
        for batch in rounds {
            let rf = flat.apply(batch.clone()).unwrap();
            let rs = sharded.apply(batch).unwrap();
            assert_eq!(rf.algorithm, rs.algorithm);
            assert_eq!(rf.inserted_tids, rs.inserted_tids);
            assert_eq!(rf.num_transactions, rs.num_transactions);
            assert!(flat
                .large_itemsets()
                .same_itemsets(sharded.large_itemsets()));
            assert_eq!(flat.rules().len(), sharded.rules().len());
            assert_eq!(
                flat.store().live_view(),
                sharded.store().live_view(),
                "live-tid views must agree"
            );
            sharded.verify_consistency().unwrap();
        }
    }

    #[test]
    fn sharded_pinned_vertical_extends_per_shard_and_deletes_touch_one_shard() {
        let mut m = Maintainer::builder()
            .min_support(MinSupport::percent(30))
            .min_confidence(MinConfidence::percent(60))
            .backend(CountingBackend::Vertical)
            .shard_spec(ShardSpec::striped_with(2, 2))
            .build(history())
            .unwrap();
        // Pinned-vertical bootstrap seeds every non-empty shard.
        let stats = m.index_stats();
        assert_eq!(stats.builds, 2, "one seed per shard");
        assert!(stats.resident);

        // Insert-only rounds extend shards, never rebuild.
        m.apply(UpdateBatch::insert_only(vec![tx(&[1, 2]), tx(&[2, 3])]))
            .unwrap();
        m.verify_consistency().unwrap();
        assert_eq!(m.index_stats().builds, 2);

        // A delete invalidates only its own shard: builds go up by exactly
        // one (the touched shard), not one per shard.
        let tid0 = m.store().iter().next().unwrap().0;
        m.apply(UpdateBatch::delete_only(vec![tid0])).unwrap();
        m.verify_consistency().unwrap();
        assert_eq!(
            m.index_stats().builds,
            3,
            "only the deleted tid's shard rebuilds"
        );
    }

    #[test]
    fn sharded_durable_recovery_round_trips_and_spec_is_pure_config() {
        let storage = mem();
        let mut m = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .shards(2)
            .build_durable(history(), Arc::clone(&storage) as Arc<dyn DurableStorage>)
            .unwrap();
        m.stage(UpdateBatch::insert_only(vec![tx(&[1, 2, 3]), tx(&[3])]))
            .unwrap();
        m.commit().unwrap();
        m.stage(UpdateBatch {
            inserts: vec![tx(&[2, 3])],
            deletes: vec![Tid(0)],
        })
        .unwrap();
        m.commit().unwrap();

        // Recover under the SAME spec...
        let image = Arc::new(fup_tidb::MemStorage::from_files(storage.files()));
        let (r, _) = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .shards(2)
            .recover(Arc::clone(&image) as Arc<dyn DurableStorage>)
            .unwrap();
        assert_same_published_state(&m, &r);
        r.verify_consistency().unwrap();

        // ...under a DIFFERENT shard count...
        let (r4, _) = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .shards(4)
            .recover(Arc::clone(&image) as Arc<dyn DurableStorage>)
            .unwrap();
        assert_same_published_state(&m, &r4);
        assert_eq!(r4.store().num_shards(), 4);

        // ...and flat: the spec is configuration, not state.
        let (rf, _) = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .recover(image as Arc<dyn DurableStorage>)
            .unwrap();
        assert_same_published_state(&m, &rf);
        assert_eq!(rf.store().num_shards(), 1);
    }

    #[test]
    fn sharded_remine_policy_stays_consistent() {
        let mut m = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .policy(UpdatePolicy::AlwaysRemine)
            .shards(3)
            .build(history())
            .unwrap();
        m.apply(UpdateBatch {
            inserts: vec![tx(&[1, 2]), tx(&[2, 3])],
            deletes: vec![Tid(2)],
        })
        .unwrap();
        m.verify_consistency().unwrap();
        assert_eq!(m.store().shard_lens().iter().sum::<usize>(), m.len());
    }

    #[test]
    fn durable_discard_does_not_resurrect_batches() {
        let storage = mem();
        let mut m = durable_session(Arc::clone(&storage));
        m.stage(UpdateBatch::delete_only(vec![Tid(0)])).unwrap();
        let dropped = m.discard();
        assert_eq!(dropped.deletes, vec![Tid(0)]);
        // The tid is claimable again in this session...
        m.stage(UpdateBatch::delete_only(vec![Tid(0)])).unwrap();
        m.commit().unwrap();
        // ...and recovery agrees: nothing pending, the delete committed.
        let image = Arc::new(fup_tidb::MemStorage::from_files(storage.files()));
        let (r, report) = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .recover(image as Arc<dyn DurableStorage>)
            .unwrap();
        assert_eq!(report.restaged_batches, 0);
        assert!(!r.has_staged());
        assert_eq!(r.len(), 4);
    }
}

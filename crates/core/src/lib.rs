//! # fup-core — incremental maintenance of discovered association rules
//!
//! Implementation of **FUP** (Fast UPdate), the algorithm of
//! Cheung, Han, Ng & Wong, *"Maintenance of Discovered Association Rules in
//! Large Databases: An Incremental Updating Technique"* (ICDE 1996), plus
//! the FUP2 extension for deletions the paper's §5 announces.
//!
//! Given a database `DB`, its large itemsets `L` *with support counts*, and
//! an increment `db` of new transactions, [`fup::Fup`] computes the large
//! itemsets `L'` of `DB ∪ db` while scanning the small increment for the
//! old itemsets and only a heavily-pruned candidate pool against `DB`:
//!
//! * old large itemsets are confirmed or filtered out ("losers") with a
//!   scan of `db` alone (Lemmas 1/4),
//! * losers propagate upward without any scan (Lemma 3),
//! * a new itemset can only emerge if it is large *inside the increment*,
//!   so candidates are pruned by their `db` support before the expensive
//!   `DB` scan (Lemmas 2/5),
//! * the scanned data shrinks every iteration via the `Reduce-db` /
//!   `Reduce-DB` trimming and the P-set optimisation (§3.4),
//! * DHP-style pair hashing over the increment further thins the size-2
//!   candidates (§3.4, last paragraph).
//!
//! The high-level entry point is the session-oriented
//! [`session::Maintainer`]: built once through a validating
//! [`builder`](session::Maintainer::builder), it accumulates update
//! batches with [`stage`](session::Maintainer::stage), applies everything
//! staged as one FUP/FUP2 round with
//! [`commit`](session::Maintainer::commit), serves reads through cheap
//! version-stamped [`session::RuleSnapshot`]s, and keeps a persistent
//! [`VerticalIndex`](fup_mining::VerticalIndex) alive across rounds (see
//! [`vindex`]). Sessions can be made crash-safe with a write-ahead log and
//! periodic checkpoints (see [`durable`]), recovering to exactly the last
//! durably-acknowledged commit after a kill at any point.
//!
//! ```
//! use fup_core::Maintainer;
//! use fup_mining::{MinConfidence, MinSupport};
//! use fup_tidb::{Transaction, UpdateBatch};
//!
//! let history = vec![
//!     Transaction::from_items([1u32, 2, 3]),
//!     Transaction::from_items([1u32, 2]),
//!     Transaction::from_items([2u32, 3]),
//! ];
//! let mut m = Maintainer::builder()
//!     .min_support(MinSupport::percent(50))
//!     .min_confidence(MinConfidence::percent(80))
//!     .build(history)
//!     .unwrap();
//! m.stage(UpdateBatch::insert_only(vec![
//!     Transaction::from_items([1u32, 3]),
//! ]))
//! .unwrap();
//! let report = m.commit().unwrap();
//! assert_eq!(report.num_transactions, 4);
//! assert_eq!(m.snapshot().version(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod config;
pub mod diff;
pub mod durable;
pub mod error;
pub mod fup;
pub mod fup2;
pub mod policy;
pub mod reduce;
pub mod service;
pub mod session;
pub(crate) mod shard;
pub mod vindex;

pub use cluster::{Cluster, ShardWorker, WorkerProbe};
pub use config::FupConfig;
pub use diff::{ItemsetDiff, RuleDiff};
pub use durable::{DurabilityPolicy, LogState, RecoveryReport, RetryPolicy};
pub use error::{BuildError, Error, Result};
pub use fup::{Fup, FupOutcome, FupPassDetail};
pub use fup2::Fup2;
pub use policy::UpdatePolicy;
pub use service::{
    CommitPolicy, HealthReport, HealthState, MaintainerService, ServiceError, ServiceHealth,
    ServiceMetrics, ShardHealth,
};
pub use session::{
    IndexStats, Maintainer, MaintainerBuilder, MaintenanceReport, RuleSnapshot, SessionStore,
    StageHandle, Updater,
};
pub use vindex::IndexSlot;

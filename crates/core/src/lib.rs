//! # fup-core — incremental maintenance of discovered association rules
//!
//! Implementation of **FUP** (Fast UPdate), the algorithm of
//! Cheung, Han, Ng & Wong, *"Maintenance of Discovered Association Rules in
//! Large Databases: An Incremental Updating Technique"* (ICDE 1996), plus
//! the FUP2 extension for deletions the paper's §5 announces.
//!
//! Given a database `DB`, its large itemsets `L` *with support counts*, and
//! an increment `db` of new transactions, [`fup::Fup`] computes the large
//! itemsets `L'` of `DB ∪ db` while scanning the small increment for the
//! old itemsets and only a heavily-pruned candidate pool against `DB`:
//!
//! * old large itemsets are confirmed or filtered out ("losers") with a
//!   scan of `db` alone (Lemmas 1/4),
//! * losers propagate upward without any scan (Lemma 3),
//! * a new itemset can only emerge if it is large *inside the increment*,
//!   so candidates are pruned by their `db` support before the expensive
//!   `DB` scan (Lemmas 2/5),
//! * the scanned data shrinks every iteration via the `Reduce-db` /
//!   `Reduce-DB` trimming and the P-set optimisation (§3.4),
//! * DHP-style pair hashing over the increment further thins the size-2
//!   candidates (§3.4, last paragraph).
//!
//! The high-level entry point is [`maintain::RuleMaintainer`], which owns a
//! [`SegmentedDb`](fup_tidb::SegmentedDb), keeps itemsets and rules current
//! across arbitrary insert/delete batches, and reports which rules each
//! update created or invalidated.
//!
//! ```
//! use fup_core::maintain::RuleMaintainer;
//! use fup_mining::{MinConfidence, MinSupport};
//! use fup_tidb::{Transaction, UpdateBatch};
//!
//! let history = vec![
//!     Transaction::from_items([1u32, 2, 3]),
//!     Transaction::from_items([1u32, 2]),
//!     Transaction::from_items([2u32, 3]),
//! ];
//! let mut m = RuleMaintainer::bootstrap(
//!     history,
//!     MinSupport::percent(50),
//!     MinConfidence::percent(80),
//! );
//! let report = m
//!     .apply_update(UpdateBatch::insert_only(vec![
//!         Transaction::from_items([1u32, 3]),
//!     ]))
//!     .unwrap();
//! assert_eq!(report.num_transactions, 4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod diff;
pub mod error;
pub mod fup;
pub mod fup2;
pub mod maintain;
pub mod policy;
pub mod reduce;
mod vindex;

pub use config::FupConfig;
pub use diff::{ItemsetDiff, RuleDiff};
pub use error::{Error, Result};
pub use fup::{Fup, FupOutcome, FupPassDetail};
pub use fup2::Fup2;
pub use maintain::{MaintenanceReport, RuleMaintainer};
pub use policy::UpdatePolicy;

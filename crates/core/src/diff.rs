//! Diffing itemsets and rules across updates.
//!
//! The motivation of the paper is that "database updates may introduce new
//! association rules and invalidate some existing ones" (§1). The
//! maintenance layer surfaces exactly that: which rules an update created,
//! which it killed, and the same for large itemsets.

use fup_mining::{Itemset, LargeItemsets, Rule, RuleSet};

/// The itemset-level difference between two mining results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ItemsetDiff {
    /// Itemsets large after the update but not before ("emerged winners").
    pub emerged: Vec<Itemset>,
    /// Itemsets large before but not after ("losers").
    pub expired: Vec<Itemset>,
    /// Number of itemsets large in both.
    pub retained: usize,
}

impl ItemsetDiff {
    /// Computes `after − before` / `before − after` by itemset identity.
    pub fn between(before: &LargeItemsets, after: &LargeItemsets) -> Self {
        let mut emerged = Vec::new();
        let mut expired = Vec::new();
        let mut retained = 0usize;
        for (x, _) in after.iter() {
            if before.contains(x) {
                retained += 1;
            } else {
                emerged.push(x.clone());
            }
        }
        for (x, _) in before.iter() {
            if !after.contains(x) {
                expired.push(x.clone());
            }
        }
        emerged.sort();
        expired.sort();
        ItemsetDiff {
            emerged,
            expired,
            retained,
        }
    }

    /// `true` when nothing changed.
    pub fn is_unchanged(&self) -> bool {
        self.emerged.is_empty() && self.expired.is_empty()
    }
}

/// The rule-level difference between two rule sets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleDiff {
    /// Rules strong after the update but not before.
    pub added: Vec<Rule>,
    /// Rules strong before but not after ("invalidated").
    pub removed: Vec<Rule>,
    /// Number of rules strong in both (identity only; confidences may have
    /// drifted).
    pub retained: usize,
}

impl RuleDiff {
    /// Computes the diff between two rule sets by rule identity
    /// (antecedent + consequent).
    pub fn between(before: &RuleSet, after: &RuleSet) -> Self {
        let added = after.minus(before);
        let removed = before.minus(after);
        let retained = after.len() - added.len();
        RuleDiff {
            added,
            removed,
            retained,
        }
    }

    /// `true` when no rule appeared or disappeared.
    pub fn is_unchanged(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(items: &[u32]) -> Itemset {
        Itemset::from_items(items.iter().copied())
    }

    fn rule(a: &[u32], c: &[u32]) -> Rule {
        Rule {
            antecedent: s(a),
            consequent: s(c),
            union_count: 10,
            antecedent_count: 10,
        }
    }

    #[test]
    fn itemset_diff_classifies_changes() {
        let mut before = LargeItemsets::new(10);
        before.insert(s(&[1]), 5);
        before.insert(s(&[2]), 5);
        let mut after = LargeItemsets::new(12);
        after.insert(s(&[1]), 6); // retained (support change ignored)
        after.insert(s(&[3]), 6); // emerged
        let d = ItemsetDiff::between(&before, &after);
        assert_eq!(d.emerged, vec![s(&[3])]);
        assert_eq!(d.expired, vec![s(&[2])]);
        assert_eq!(d.retained, 1);
        assert!(!d.is_unchanged());
    }

    #[test]
    fn itemset_diff_unchanged() {
        let mut a = LargeItemsets::new(10);
        a.insert(s(&[1]), 5);
        let d = ItemsetDiff::between(&a, &a);
        assert!(d.is_unchanged());
        assert_eq!(d.retained, 1);
    }

    #[test]
    fn rule_diff_classifies_changes() {
        let before = RuleSet::from_rules(vec![rule(&[1], &[2]), rule(&[2], &[3])]);
        let after = RuleSet::from_rules(vec![rule(&[1], &[2]), rule(&[4], &[5])]);
        let d = RuleDiff::between(&before, &after);
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.added[0].antecedent, s(&[4]));
        assert_eq!(d.removed.len(), 1);
        assert_eq!(d.removed[0].antecedent, s(&[2]));
        assert_eq!(d.retained, 1);
    }

    #[test]
    fn rule_diff_unchanged() {
        let set = RuleSet::from_rules(vec![rule(&[1], &[2])]);
        let d = RuleDiff::between(&set, &set);
        assert!(d.is_unchanged());
        assert_eq!(d.retained, 1);
    }

    #[test]
    fn empty_sets_diff() {
        let d = RuleDiff::between(&RuleSet::default(), &RuleSet::default());
        assert!(d.is_unchanged());
        assert_eq!(d.retained, 0);
    }
}

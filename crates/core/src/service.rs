//! The concurrent ingestion service: a thread-safe layer over the
//! [`Maintainer`] session for deployments where updates arrive from many
//! threads and reads must never wait.
//!
//! A [`MaintainerService`] splits the session's three roles across
//! threads:
//!
//! * **Producers** call [`stage`](MaintainerService::stage) from any
//!   number of threads (`&self`). Batches land in the store's sharded,
//!   lock-striped staging area ([`fup_tidb::StagingArea`]) with the same
//!   arrival-time validation as [`Maintainer::stage`]; producers touch
//!   neither the live set nor the mined state, so they run concurrently
//!   with each other, with readers, and with a commit round mid-scan.
//! * **The committer** is one owned background thread that owns the
//!   [`Maintainer`]. Driven by a validating [`CommitPolicy`] — a pending
//!   ops trigger, an increment-ratio trigger mirroring FUP2's re-mine
//!   economics, and explicit [`flush`](MaintainerService::flush) — it
//!   drains all shards in global arrival order and applies them as
//!   **one** deterministic FUP/FUP2 round.
//! * **Readers** call [`snapshot`](MaintainerService::snapshot), served
//!   from an epoch-pinned snapshot cell: a read is a couple of atomic
//!   operations and an `Arc` clone, never a lock — commits swap the cell
//!   only after the round completes, so queries stay wait-free while a
//!   round is scanning.
//!
//! The service reports its own counters ([`ServiceMetrics`]): batches
//! staged/committed/dropped, commit latency, and the persistent index's
//! build/extend totals.
//!
//! ```
//! use fup_core::service::{CommitPolicy, MaintainerService};
//! use fup_core::Maintainer;
//! use fup_mining::{MinConfidence, MinSupport};
//! use fup_tidb::{Transaction, UpdateBatch};
//!
//! let maintainer = Maintainer::builder()
//!     .min_support(MinSupport::percent(50))
//!     .min_confidence(MinConfidence::percent(70))
//!     .build(vec![
//!         Transaction::from_items([1u32, 2, 3]),
//!         Transaction::from_items([1u32, 2]),
//!         Transaction::from_items([2u32, 3]),
//!     ])
//!     .unwrap();
//! let service = MaintainerService::launch(maintainer, CommitPolicy::manual()).unwrap();
//!
//! // Producers stage concurrently (here: two scoped threads)...
//! std::thread::scope(|scope| {
//!     for _ in 0..2 {
//!         scope.spawn(|| {
//!             service
//!                 .stage(UpdateBatch::insert_only(vec![
//!                     Transaction::from_items([1u32, 3]),
//!                 ]))
//!                 .unwrap();
//!         });
//!     }
//! });
//! // ...readers never block...
//! assert_eq!(service.snapshot().version(), 0);
//! // ...and a flush forces one round over everything staged.
//! let report = service.flush().unwrap();
//! assert_eq!(report.num_transactions, 5);
//! assert_eq!(service.snapshot().version(), 1);
//! let (maintainer, metrics) = service.shutdown();
//! assert_eq!(metrics.staged_inserts, 2);
//! assert_eq!(maintainer.len(), 5);
//! ```

use crate::durable::RecoveryReport;
use crate::error::Error;
use crate::session::{
    Maintainer, MaintainerBuilder, MaintenanceReport, RuleSnapshot, SnapshotState, StageHandle,
};
use fup_tidb::{DurableStorage, UpdateBatch};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Errors of the service layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// A [`CommitPolicy`] pending-ops trigger of zero would commit
    /// forever; use [`CommitPolicy::manual`] to disable auto-commits.
    ZeroPendingTrigger,
    /// A [`CommitPolicy`] increment-ratio trigger was not a positive,
    /// finite number.
    InvalidIncrementRatio(f64),
    /// A [`CommitPolicy`] poll interval of zero would busy-spin the
    /// committer thread.
    ZeroPollInterval,
    /// A batch failed arrival-time validation and was not staged (wraps
    /// the session error, e.g. an unknown tid or
    /// [`Error::DeletionsDisabled`]).
    Stage(Error),
    /// The round covering a [`flush`](MaintainerService::flush) failed;
    /// the staged work it drained was dropped (see
    /// [`ServiceMetrics::dropped_ops`]).
    Commit(Error),
    /// The service is shutting down (or already shut down).
    ShutDown,
    /// Rebuilding the session from durable storage failed (wraps the
    /// session error — see
    /// [`MaintainerBuilder::recover`](crate::MaintainerBuilder::recover)).
    Recover(Error),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::ZeroPendingTrigger => write!(
                f,
                "pending-ops commit trigger of zero; use CommitPolicy::manual() to disable \
                 auto-commits"
            ),
            ServiceError::InvalidIncrementRatio(r) => {
                write!(f, "increment-ratio trigger {r} is not a positive number")
            }
            ServiceError::ZeroPollInterval => {
                write!(f, "a zero poll interval would busy-spin the committer")
            }
            ServiceError::Stage(e) => write!(f, "batch rejected at arrival: {e}"),
            ServiceError::Commit(e) => write!(f, "commit round failed: {e}"),
            ServiceError::ShutDown => write!(f, "the maintainer service is shut down"),
            ServiceError::Recover(e) => write!(f, "recovery failed before launch: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Stage(e) | ServiceError::Commit(e) | ServiceError::Recover(e) => Some(e),
            _ => None,
        }
    }
}

/// When the background committer turns staged batches into a maintenance
/// round. Triggers combine with OR; [`flush`](MaintainerService::flush)
/// always forces a round regardless of policy.
///
/// The increment-ratio trigger mirrors the economics of the paper's §4.5
/// and Figure 4: FUP's advantage over re-mining is largest for increments
/// small relative to `DB`, so committing once the staged volume reaches a
/// fraction of the live database keeps every round in the regime the
/// incremental algorithms are built for.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitPolicy {
    /// Commit once staged inserts + deletes reach this count
    /// (`None` disables the trigger).
    pub max_pending_ops: Option<u64>,
    /// Commit once `staged / |DB|` reaches this ratio (`None` disables).
    pub max_increment_ratio: Option<f64>,
    /// How often the committer re-checks triggers when idle (it is also
    /// woken eagerly by producers whose batch crosses a trigger).
    pub poll_interval: Duration,
}

impl Default for CommitPolicy {
    /// Commit every 8 192 staged ops, or at a staged volume of 10 % of
    /// the live database, polling every 20 ms.
    fn default() -> Self {
        CommitPolicy {
            max_pending_ops: Some(8_192),
            max_increment_ratio: Some(0.10),
            poll_interval: Duration::from_millis(20),
        }
    }
}

impl CommitPolicy {
    /// No automatic triggers: rounds happen only on
    /// [`flush`](MaintainerService::flush) (and at shutdown).
    pub fn manual() -> Self {
        CommitPolicy {
            max_pending_ops: None,
            max_increment_ratio: None,
            ..Self::default()
        }
    }

    /// This policy with the pending-ops trigger set to `n`.
    pub fn every_ops(mut self, n: u64) -> Self {
        self.max_pending_ops = Some(n);
        self
    }

    /// This policy with the increment-ratio trigger set to `ratio`.
    pub fn at_increment_ratio(mut self, ratio: f64) -> Self {
        self.max_increment_ratio = Some(ratio);
        self
    }

    /// This policy with an explicit idle poll interval.
    pub fn with_poll_interval(mut self, interval: Duration) -> Self {
        self.poll_interval = interval;
        self
    }

    /// Rejects configurations the committer cannot run.
    pub fn validate(&self) -> Result<(), ServiceError> {
        if self.max_pending_ops == Some(0) {
            return Err(ServiceError::ZeroPendingTrigger);
        }
        if let Some(r) = self.max_increment_ratio {
            if !r.is_finite() || r <= 0.0 {
                return Err(ServiceError::InvalidIncrementRatio(r));
            }
        }
        if self.poll_interval.is_zero() {
            return Err(ServiceError::ZeroPollInterval);
        }
        Ok(())
    }

    /// `true` if `pending` staged ops over a `live`-transaction database
    /// cross any configured trigger.
    fn triggered(&self, pending: u64, live: u64) -> bool {
        if pending == 0 {
            return false;
        }
        if self.max_pending_ops.is_some_and(|n| pending >= n) {
            return true;
        }
        self.max_increment_ratio
            .is_some_and(|r| pending as f64 >= r * live as f64)
    }
}

/// A point-in-time copy of the service's counters (see
/// [`MaintainerService::metrics`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Batches accepted by [`stage`](MaintainerService::stage).
    pub staged_batches: u64,
    /// Transactions staged for insertion.
    pub staged_inserts: u64,
    /// Deletions staged.
    pub staged_deletes: u64,
    /// Batches rejected at arrival-time validation (nothing was queued).
    pub rejected_batches: u64,
    /// Maintenance rounds committed (including empty flush rounds).
    pub committed_rounds: u64,
    /// Transactions inserted by committed rounds.
    pub committed_inserts: u64,
    /// Deletions applied by committed rounds.
    pub committed_deletes: u64,
    /// Rounds that failed after draining (their staged work was dropped).
    pub dropped_rounds: u64,
    /// Staged ops consumed by failed rounds.
    pub dropped_ops: u64,
    /// Wall-clock microseconds of the most recent committed round.
    pub last_commit_micros: u64,
    /// Cumulative wall-clock microseconds across committed rounds.
    pub total_commit_micros: u64,
    /// From-scratch vertical index builds in the underlying session.
    pub index_builds: u64,
    /// In-place vertical index extends in the underlying session.
    pub index_extends: u64,
}

#[derive(Debug, Default)]
struct MetricsAtomics {
    staged_batches: AtomicU64,
    staged_inserts: AtomicU64,
    staged_deletes: AtomicU64,
    rejected_batches: AtomicU64,
    committed_rounds: AtomicU64,
    committed_inserts: AtomicU64,
    committed_deletes: AtomicU64,
    dropped_rounds: AtomicU64,
    dropped_ops: AtomicU64,
    last_commit_micros: AtomicU64,
    total_commit_micros: AtomicU64,
    index_builds: AtomicU64,
    index_extends: AtomicU64,
}

impl MetricsAtomics {
    fn snapshot(&self) -> ServiceMetrics {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServiceMetrics {
            staged_batches: load(&self.staged_batches),
            staged_inserts: load(&self.staged_inserts),
            staged_deletes: load(&self.staged_deletes),
            rejected_batches: load(&self.rejected_batches),
            committed_rounds: load(&self.committed_rounds),
            committed_inserts: load(&self.committed_inserts),
            committed_deletes: load(&self.committed_deletes),
            dropped_rounds: load(&self.dropped_rounds),
            dropped_ops: load(&self.dropped_ops),
            last_commit_micros: load(&self.last_commit_micros),
            total_commit_micros: load(&self.total_commit_micros),
            index_builds: load(&self.index_builds),
            index_extends: load(&self.index_extends),
        }
    }
}

/// An epoch-pinned pointer cell holding the current `Arc<SnapshotState>`.
///
/// Readers never lock: a load is epoch-read → pin (one `fetch_add`) →
/// epoch re-check → pointer load → `Arc` clone → unpin. The single
/// writer (the committer) swaps the pointer, advances the epoch, and
/// spins until the *retired* epoch's pin count drains before dropping
/// the old `Arc` — an RCU-style grace period that costs the writer, not
/// the readers.
///
/// ## Safety argument
///
/// The hazard is a reader cloning from an `Arc` the writer has already
/// dropped. All cell operations use `SeqCst`, so a total order exists.
/// A reader only dereferences the pointer after (a) pinning parity
/// `e & 1` and (b) re-loading the epoch and observing it still equal to
/// `e`. Consider the writer's store #`e + 1` (the one advancing the
/// epoch from `e`): it retires parity `e & 1` and waits for that pin
/// count to reach zero *after* swapping in the new pointer. The reader's
/// pin precedes its revalidating epoch load, which observed a value
/// (`e`) older than store #`e + 1`'s increment — so the pin is ordered
/// before the wait-loop's loads and the writer blocks until the reader
/// unpins. The pointer the reader loaded is either the pre-swap value
/// (freed by store #`e + 1`, which waits) or the post-swap value (freed
/// by store #`e + 2`, which cannot *start* until store #`e + 1`
/// completes its wait). Either way the free is ordered after the
/// reader's unpin, which follows the clone. A reader whose revalidation
/// fails unpins and retries without ever dereferencing.
struct SnapshotCell {
    ptr: AtomicPtr<SnapshotState>,
    epoch: AtomicUsize,
    pins: [AtomicUsize; 2],
    /// Serialises writers (defence in depth — the committer is the only
    /// writer by construction).
    writer: Mutex<()>,
}

impl SnapshotCell {
    fn new(state: Arc<SnapshotState>) -> Self {
        SnapshotCell {
            ptr: AtomicPtr::new(Arc::into_raw(state).cast_mut()),
            epoch: AtomicUsize::new(0),
            pins: [AtomicUsize::new(0), AtomicUsize::new(0)],
            writer: Mutex::new(()),
        }
    }

    fn load(&self) -> Arc<SnapshotState> {
        loop {
            let e = self.epoch.load(Ordering::SeqCst);
            let slot = &self.pins[e & 1];
            slot.fetch_add(1, Ordering::SeqCst);
            if self.epoch.load(Ordering::SeqCst) == e {
                let ptr = self.ptr.load(Ordering::SeqCst);
                // SAFETY: the epoch-validated pin above guarantees the
                // writer's grace period waits for this reader before the
                // Arc behind `ptr` can be dropped (see the type docs).
                let borrowed = unsafe { Arc::from_raw(ptr) };
                let out = Arc::clone(&borrowed);
                std::mem::forget(borrowed);
                slot.fetch_sub(1, Ordering::SeqCst);
                return out;
            }
            // A store completed between the epoch read and the pin; the
            // pin may be on a retired parity no writer waits for, so it
            // must not be used. Retry against the new epoch.
            slot.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn store(&self, state: Arc<SnapshotState>) {
        let _writer = self.writer.lock().expect("snapshot cell writer poisoned");
        let old = self
            .ptr
            .swap(Arc::into_raw(state).cast_mut(), Ordering::SeqCst);
        let retired = self.epoch.fetch_add(1, Ordering::SeqCst) & 1;
        // Grace period: readers pinned on the retired parity may still be
        // cloning the old Arc; their critical section is a few atomic ops
        // long, so spin-yield until it drains.
        while self.pins[retired].load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        // SAFETY: `old` came from `Arc::into_raw` (in `new` or an earlier
        // `store`), the swap removed the cell's reference, and the grace
        // period above ordered every borrowing reader's unpin before this
        // point.
        unsafe { drop(Arc::from_raw(old)) };
    }
}

impl Drop for SnapshotCell {
    fn drop(&mut self) {
        // SAFETY: exclusive access; the pointer holds the cell's own
        // reference from `new`/`store`.
        unsafe { drop(Arc::from_raw(self.ptr.load(Ordering::SeqCst))) };
    }
}

/// Committer-side control state, guarded by one mutex.
#[derive(Debug, Default)]
struct Ctl {
    stop: bool,
    /// Flush tickets issued to waiters.
    flush_requested: u64,
    /// Highest flush ticket covered by a completed round.
    flush_completed: u64,
    /// Tickets with a waiter currently blocked in `flush`.
    waiting: std::collections::BTreeSet<u64>,
    /// Per-round outcomes, as `(highest ticket covered, result)` in round
    /// order — a waiter for ticket `t` takes the *first* entry covering
    /// `t`, so a later round's failure (or success) is never
    /// misattributed to an earlier flush. Pruned to what blocked waiters
    /// can still need (empty whenever nobody waits).
    outcomes: Vec<(u64, Result<MaintenanceReport, Error>)>,
    /// Failed rounds so far. A flush compares this against its value at
    /// ticket issuance: work the flush means to cover may have been
    /// drained — and dropped — by a round that *started* before the
    /// ticket existed, whose failure its covering round would otherwise
    /// mask (rounds are serial, so that failure is recorded before any
    /// covering round runs).
    rounds_failed: u64,
    /// The most recent failed round's error, for the comparison above.
    last_round_error: Option<Error>,
}

impl Ctl {
    /// Drops outcome entries no blocked waiter can take: everything
    /// before the first entry covering the smallest waiting ticket.
    fn prune_outcomes(&mut self) {
        match self.waiting.iter().next().copied() {
            None => self.outcomes.clear(),
            Some(min) => {
                let first_needed = self
                    .outcomes
                    .iter()
                    .position(|&(covered, _)| covered >= min)
                    .unwrap_or(self.outcomes.len());
                self.outcomes.drain(..first_needed);
            }
        }
    }
}

struct Shared {
    handle: StageHandle,
    policy: CommitPolicy,
    cell: SnapshotCell,
    metrics: MetricsAtomics,
    /// `|DB|` after the last committed round, for the ratio trigger.
    live_len: AtomicU64,
    stopping: AtomicBool,
    /// Producers currently inside `stage` — the shutdown drain waits for
    /// this to reach zero so no accepted batch can miss the final round.
    in_flight: AtomicU64,
    ctl: Mutex<Ctl>,
    /// Wakes the committer (producer crossed a trigger, flush, stop).
    work_cv: Condvar,
    /// Wakes flush waiters (a round completed, or stop).
    done_cv: Condvar,
}

/// RAII decrement of `Shared::in_flight`, covering every exit path of
/// [`MaintainerService::stage`].
struct InFlightGuard<'a>(&'a AtomicU64);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Shared {
    fn triggered(&self) -> bool {
        let (i, d) = self.handle.pending_ops();
        self.policy
            .triggered(i + d, self.live_len.load(Ordering::Relaxed))
    }
}

/// A running maintenance service: the session's staging, committing, and
/// serving split across threads. See the [module docs](self) for the
/// model and an example.
///
/// All methods take `&self`; share the service across producer and
/// reader threads by reference (e.g. [`std::thread::scope`]) or wrap it
/// in an [`Arc`]. Dropping the service without
/// [`shutdown`](Self::shutdown) stops the committer after a final drain
/// of everything staged.
pub struct MaintainerService {
    shared: Arc<Shared>,
    committer: Option<JoinHandle<Maintainer>>,
}

impl fmt::Debug for MaintainerService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MaintainerService")
            .field("policy", &self.shared.policy)
            .field("metrics", &self.shared.metrics.snapshot())
            .finish_non_exhaustive()
    }
}

impl MaintainerService {
    /// Validates `policy` and launches the committer thread around
    /// `maintainer`. The session's current state becomes snapshot version
    /// 0 of the cell; [`shutdown`](Self::shutdown) hands the session
    /// back.
    pub fn launch(
        maintainer: Maintainer,
        policy: CommitPolicy,
    ) -> Result<MaintainerService, ServiceError> {
        policy.validate()?;
        let shared = Arc::new(Shared {
            handle: maintainer.stage_handle(),
            policy,
            cell: SnapshotCell::new(maintainer.state_arc()),
            metrics: MetricsAtomics::default(),
            live_len: AtomicU64::new(maintainer.len() as u64),
            stopping: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            ctl: Mutex::new(Ctl::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let committer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fup-committer".into())
                .spawn(move || committer_loop(maintainer, &shared))
                .expect("spawning the committer thread")
        };
        Ok(MaintainerService {
            shared,
            committer: Some(committer),
        })
    }

    /// Rebuilds a durable session from `storage` (see
    /// [`MaintainerBuilder::recover`]) and launches the service around
    /// it — the one-call crash-restart path for a durable serving
    /// deployment. The recovered state (including any re-queued staged
    /// batches, which the policy's triggers see immediately) is snapshot
    /// version 0 of the cell.
    pub fn recover(
        builder: MaintainerBuilder,
        storage: Arc<dyn DurableStorage>,
        policy: CommitPolicy,
    ) -> Result<(MaintainerService, RecoveryReport), ServiceError> {
        policy.validate()?;
        let (maintainer, report) = builder.recover(storage).map_err(ServiceError::Recover)?;
        let service = MaintainerService::launch(maintainer, policy)?;
        Ok((service, report))
    }

    /// Queues a batch for the next maintenance round. Thread-safe and
    /// non-blocking (producers contend only on a staging shard stripe);
    /// validation failures reject the batch atomically at arrival.
    pub fn stage(&self, batch: UpdateBatch) -> Result<(), ServiceError> {
        // Register in-flight *before* checking the stop flag (both
        // SeqCst): a producer that observed `stopping == false` is
        // visible to the shutdown drain's in-flight wait, so a batch this
        // method accepts is always covered by a round — it can never
        // slip in behind the committer's final drain.
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let guard = InFlightGuard(&self.shared.in_flight);
        if self.shared.stopping.load(Ordering::SeqCst) {
            return Err(ServiceError::ShutDown);
        }
        let inserts = batch.inserts.len() as u64;
        let deletes = batch.deletes.len() as u64;
        if let Err(e) = self.shared.handle.stage(batch) {
            self.shared
                .metrics
                .rejected_batches
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::Stage(e));
        }
        let m = &self.shared.metrics;
        m.staged_batches.fetch_add(1, Ordering::Relaxed);
        m.staged_inserts.fetch_add(inserts, Ordering::Relaxed);
        m.staged_deletes.fetch_add(deletes, Ordering::Relaxed);
        drop(guard);
        if self.shared.triggered() {
            // Eager wakeup; the committer also polls, so a lost race here
            // only costs one poll interval.
            let _ctl = self.shared.ctl.lock().expect("service control poisoned");
            self.shared.work_cv.notify_one();
        }
        Ok(())
    }

    /// A wait-free, version-stamped view of the current rules — never
    /// blocked by staging or by a commit round in progress, and valid
    /// forever once taken.
    pub fn snapshot(&self) -> RuleSnapshot {
        RuleSnapshot::from_state(self.shared.cell.load())
    }

    /// Forces a maintenance round over everything staged so far and
    /// blocks until it completes, returning the round's report (an empty
    /// round bumps the version and reports no changes). Concurrent
    /// flushes may be covered by one round.
    pub fn flush(&self) -> Result<MaintenanceReport, ServiceError> {
        let mut ctl = self.shared.ctl.lock().expect("service control poisoned");
        if ctl.stop {
            return Err(ServiceError::ShutDown);
        }
        ctl.flush_requested += 1;
        let ticket = ctl.flush_requested;
        ctl.waiting.insert(ticket);
        let failed_at_issue = ctl.rounds_failed;
        self.shared.work_cv.notify_one();
        loop {
            // Take the outcome of the *first* round that covered this
            // ticket — never a later round's, whose failure (or success)
            // would say nothing about the work this flush staged. A
            // covering round that succeeded still fails the flush when
            // any round failed since the ticket was issued: such a round
            // may have drained — and dropped — work staged before this
            // call, and rounds are serial, so its failure is recorded by
            // the time the covering outcome exists.
            if let Some((_, outcome)) = ctl.outcomes.iter().find(|&&(covered, _)| covered >= ticket)
            {
                let result = match outcome {
                    Ok(_) if ctl.rounds_failed > failed_at_issue => Err(ServiceError::Commit(
                        ctl.last_round_error
                            .clone()
                            .expect("a counted failure recorded its error"),
                    )),
                    Ok(report) => Ok(report.clone()),
                    Err(e) => Err(ServiceError::Commit(e.clone())),
                };
                ctl.waiting.remove(&ticket);
                ctl.prune_outcomes();
                return result;
            }
            if ctl.stop {
                ctl.waiting.remove(&ticket);
                ctl.prune_outcomes();
                return Err(ServiceError::ShutDown);
            }
            ctl = self
                .shared
                .done_cv
                .wait(ctl)
                .expect("service control poisoned");
        }
    }

    /// `(inserts, deletes)` staged and not yet drained by a round.
    pub fn pending_ops(&self) -> (u64, u64) {
        self.shared.handle.pending_ops()
    }

    /// A copy of the service counters.
    pub fn metrics(&self) -> ServiceMetrics {
        self.shared.metrics.snapshot()
    }

    /// The active commit policy.
    pub fn policy(&self) -> &CommitPolicy {
        &self.shared.policy
    }

    /// Stops the committer — after one final round draining anything
    /// still staged — and hands back the session plus the final
    /// counters. New [`stage`](Self::stage)/[`flush`](Self::flush) calls
    /// fail with [`ServiceError::ShutDown`] once shutdown begins.
    pub fn shutdown(mut self) -> (Maintainer, ServiceMetrics) {
        let maintainer = self.stop_committer().expect("committer thread panicked");
        let metrics = self.shared.metrics.snapshot();
        (maintainer, metrics)
    }

    fn stop_committer(&mut self) -> std::thread::Result<Maintainer> {
        // SeqCst to pair with `stage`'s in-flight handshake: the
        // no-batch-misses-the-final-drain argument needs this store in
        // the same total order as the producers' flag loads.
        self.shared.stopping.store(true, Ordering::SeqCst);
        {
            let mut ctl = self.shared.ctl.lock().expect("service control poisoned");
            ctl.stop = true;
            self.shared.work_cv.notify_all();
            self.shared.done_cv.notify_all();
        }
        self.committer
            .take()
            .expect("committer joined twice")
            .join()
    }
}

impl Drop for MaintainerService {
    fn drop(&mut self) {
        if self.committer.is_some() {
            // Shutdown without handing the session back; a committer
            // panic already unwound, so don't double-panic here.
            let _ = self.stop_committer();
        }
    }
}

/// The committer thread: wait for a trigger / flush / stop, run one
/// round, publish, repeat. Returns the session at shutdown.
fn committer_loop(mut maintainer: Maintainer, shared: &Shared) -> Maintainer {
    loop {
        let stop = {
            let mut ctl = shared.ctl.lock().expect("service control poisoned");
            loop {
                if ctl.stop {
                    break true;
                }
                if ctl.flush_requested > ctl.flush_completed || shared.triggered() {
                    break false;
                }
                let (guard, _timeout) = shared
                    .work_cv
                    .wait_timeout(ctl, shared.policy.poll_interval)
                    .expect("service control poisoned");
                ctl = guard;
            }
        };
        if stop {
            // Producers that passed the stop check are still landing
            // batches (they registered in `in_flight` first); wait them
            // out so the final round provably drains everything `stage`
            // ever accepted.
            while shared.in_flight.load(Ordering::SeqCst) != 0 {
                std::thread::yield_now();
            }
        }
        let (flush_pending, flush_ticket) = {
            let ctl = shared.ctl.lock().expect("service control poisoned");
            (
                ctl.flush_requested > ctl.flush_completed,
                ctl.flush_requested,
            )
        };
        // On stop, drain whatever is left; otherwise run for a flush (even
        // an empty one — the waiter gets a fresh report) or a trigger.
        let (pend_i, pend_d) = shared.handle.pending_ops();
        if flush_pending || (stop && pend_i + pend_d > 0) || (!stop && shared.triggered()) {
            run_round(&mut maintainer, shared, flush_ticket, pend_i + pend_d);
        }
        if stop {
            // Unblock any flush waiter that raced shutdown (its staged
            // work was drained above, but no round was dedicated to its
            // ticket — it reports ShutDown).
            let mut ctl = shared.ctl.lock().expect("service control poisoned");
            ctl.flush_completed = ctl.flush_requested.max(ctl.flush_completed);
            shared.done_cv.notify_all();
            return maintainer;
        }
    }
}

/// One maintenance round: drain + FUP/FUP2 (inside
/// [`Maintainer::commit`]), publish the snapshot, update counters, wake
/// flush waiters up to `flush_ticket`.
fn run_round(maintainer: &mut Maintainer, shared: &Shared, flush_ticket: u64, pending_hint: u64) {
    let before_len = maintainer.len() as u64;
    let start = Instant::now();
    let outcome = maintainer.commit();
    let micros = start.elapsed().as_micros() as u64;
    let m = &shared.metrics;
    let result = match outcome {
        Ok(report) => {
            shared.cell.store(maintainer.state_arc());
            shared
                .live_len
                .store(maintainer.len() as u64, Ordering::Relaxed);
            let inserted = report.inserted_tids.len() as u64;
            let deleted = (before_len + inserted).saturating_sub(report.num_transactions);
            m.committed_rounds.fetch_add(1, Ordering::Relaxed);
            m.committed_inserts.fetch_add(inserted, Ordering::Relaxed);
            m.committed_deletes.fetch_add(deleted, Ordering::Relaxed);
            m.last_commit_micros.store(micros, Ordering::Relaxed);
            m.total_commit_micros.fetch_add(micros, Ordering::Relaxed);
            let index = maintainer.index_stats();
            m.index_builds.store(index.builds, Ordering::Relaxed);
            m.index_extends.store(index.extends, Ordering::Relaxed);
            Ok(report)
        }
        Err(e) => {
            // The drained batch is consumed either way; account it as
            // dropped (`pending_hint` was read just before the drain, so
            // it can undercount by batches that raced in).
            m.dropped_rounds.fetch_add(1, Ordering::Relaxed);
            m.dropped_ops.fetch_add(pending_hint, Ordering::Relaxed);
            Err(e)
        }
    };
    let mut ctl = shared.ctl.lock().expect("service control poisoned");
    if let Err(e) = &result {
        ctl.rounds_failed += 1;
        ctl.last_round_error = Some(e.clone());
    }
    ctl.outcomes.push((flush_ticket, result));
    ctl.flush_completed = flush_ticket.max(ctl.flush_completed);
    ctl.prune_outcomes();
    shared.done_cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use fup_mining::{MinConfidence, MinSupport};
    use fup_tidb::{Tid, Transaction};

    fn tx(items: &[u32]) -> Transaction {
        Transaction::from_items(items.iter().copied())
    }

    fn session() -> Maintainer {
        Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .build(vec![
                tx(&[1, 2, 3]),
                tx(&[1, 2]),
                tx(&[2, 3]),
                tx(&[1, 3]),
                tx(&[4, 5]),
            ])
            .unwrap()
    }

    #[test]
    fn policy_validation_rejects_degenerate_triggers() {
        assert_eq!(
            CommitPolicy::default().every_ops(0).validate().unwrap_err(),
            ServiceError::ZeroPendingTrigger
        );
        for bad in [-1.0, 0.0, f64::NAN, f64::INFINITY] {
            let err = CommitPolicy::default()
                .at_increment_ratio(bad)
                .validate()
                .unwrap_err();
            assert!(
                matches!(err, ServiceError::InvalidIncrementRatio(_)),
                "{bad}: {err:?}"
            );
        }
        assert_eq!(
            CommitPolicy::default()
                .with_poll_interval(Duration::ZERO)
                .validate()
                .unwrap_err(),
            ServiceError::ZeroPollInterval
        );
        CommitPolicy::manual().validate().unwrap();
        CommitPolicy::default().validate().unwrap();
        // launch() refuses invalid policies before spawning anything.
        let err =
            MaintainerService::launch(session(), CommitPolicy::default().every_ops(0)).unwrap_err();
        assert_eq!(err, ServiceError::ZeroPendingTrigger);
    }

    #[test]
    fn trigger_arithmetic() {
        let p = CommitPolicy::manual();
        assert!(!p.triggered(u64::MAX, 0));
        let p = CommitPolicy::manual().every_ops(10);
        assert!(!p.triggered(9, 100));
        assert!(p.triggered(10, 100));
        assert!(!p.triggered(0, 0));
        let p = CommitPolicy::manual().at_increment_ratio(0.5);
        assert!(!p.triggered(49, 100));
        assert!(p.triggered(50, 100));
        assert!(p.triggered(1, 0), "any pending on an empty store triggers");
    }

    #[test]
    fn manual_service_flushes_and_hands_session_back() {
        let service = MaintainerService::launch(session(), CommitPolicy::manual()).unwrap();
        assert_eq!(service.snapshot().version(), 0);
        service
            .stage(UpdateBatch::insert_only(vec![tx(&[4, 5]), tx(&[4, 5])]))
            .unwrap();
        service
            .stage(UpdateBatch::insert_only(vec![tx(&[4, 5, 1])]))
            .unwrap();
        assert_eq!(service.pending_ops(), (3, 0));
        // Nothing committed yet: the snapshot is still version 0.
        assert_eq!(service.snapshot().version(), 0);

        let report = service.flush().unwrap();
        assert_eq!(report.algorithm, "fup");
        assert_eq!(report.num_transactions, 8);
        assert_eq!(service.snapshot().version(), 1);
        assert_eq!(service.pending_ops(), (0, 0));

        let (maintainer, metrics) = service.shutdown();
        assert_eq!(maintainer.len(), 8);
        maintainer.verify_consistency().unwrap();
        assert_eq!(metrics.staged_batches, 2);
        assert_eq!(metrics.staged_inserts, 3);
        assert_eq!(metrics.committed_rounds, 1);
        assert_eq!(metrics.committed_inserts, 3);
        assert_eq!(metrics.dropped_rounds, 0);
        assert!(metrics.last_commit_micros > 0);
    }

    #[test]
    fn pending_trigger_commits_in_background() {
        let service = MaintainerService::launch(
            session(),
            CommitPolicy::manual()
                .every_ops(4)
                .with_poll_interval(Duration::from_millis(1)),
        )
        .unwrap();
        for _ in 0..4 {
            service
                .stage(UpdateBatch::insert_only(vec![tx(&[4, 5])]))
                .unwrap();
        }
        // The committer picks the work up on its own; wait for it.
        let deadline = Instant::now() + Duration::from_secs(10);
        while service.metrics().committed_rounds == 0 {
            assert!(Instant::now() < deadline, "trigger never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(service.snapshot().version(), 1);
        let (maintainer, metrics) = service.shutdown();
        assert_eq!(metrics.committed_inserts, 4);
        maintainer.verify_consistency().unwrap();
    }

    #[test]
    fn shutdown_drains_staged_work() {
        let service = MaintainerService::launch(session(), CommitPolicy::manual()).unwrap();
        service
            .stage(UpdateBatch::insert_only(vec![tx(&[7, 8]), tx(&[7, 8])]))
            .unwrap();
        let (maintainer, metrics) = service.shutdown();
        assert_eq!(maintainer.len(), 7, "shutdown must drain staged batches");
        assert_eq!(metrics.committed_rounds, 1);
        maintainer.verify_consistency().unwrap();
    }

    #[test]
    fn rejected_batches_do_not_poison_the_round() {
        let service = MaintainerService::launch(session(), CommitPolicy::manual()).unwrap();
        let err = service
            .stage(UpdateBatch::delete_only(vec![Tid(999)]))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Stage(Error::Store(_))));
        service
            .stage(UpdateBatch::insert_only(vec![tx(&[1, 2])]))
            .unwrap();
        let report = service.flush().unwrap();
        assert_eq!(report.num_transactions, 6);
        let (_m, metrics) = service.shutdown();
        assert_eq!(metrics.rejected_batches, 1);
        assert_eq!(metrics.staged_batches, 1);
    }

    #[test]
    fn deletes_route_through_the_service() {
        let m = session();
        let victim = m.store().iter().next().unwrap().0;
        let service = MaintainerService::launch(m, CommitPolicy::manual()).unwrap();
        service
            .stage(UpdateBatch {
                inserts: vec![tx(&[4, 5])],
                deletes: vec![victim],
            })
            .unwrap();
        // The same tid cannot be claimed twice while staged.
        let err = service
            .stage(UpdateBatch::delete_only(vec![victim]))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Stage(Error::Store(_))));
        let report = service.flush().unwrap();
        assert_eq!(report.algorithm, "fup2");
        assert_eq!(report.num_transactions, 5);
        let (maintainer, metrics) = service.shutdown();
        assert_eq!(metrics.committed_deletes, 1);
        maintainer.verify_consistency().unwrap();
    }

    #[test]
    fn stage_and_flush_fail_after_shutdown_begins() {
        let service = MaintainerService::launch(session(), CommitPolicy::manual()).unwrap();
        service.shared.stopping.store(true, Ordering::Relaxed);
        let err = service
            .stage(UpdateBatch::insert_only(vec![tx(&[1])]))
            .unwrap_err();
        assert_eq!(err, ServiceError::ShutDown);
        service.shared.ctl.lock().unwrap().stop = true;
        assert_eq!(service.flush().unwrap_err(), ServiceError::ShutDown);
    }

    #[test]
    fn snapshot_cell_survives_concurrent_readers_and_stores() {
        // Stress the epoch protocol directly: 6 reader threads hammer
        // load() while the writer publishes new states as fast as it can.
        let m = session();
        let cell = SnapshotCell::new(m.state_arc());
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..6 {
                let (cell, stop) = (&cell, &stop);
                scope.spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let s = RuleSnapshot::from_state(cell.load());
                        // Versions move forward and states stay readable.
                        assert!(s.version() >= last);
                        assert!(s.num_transactions() >= 5);
                        last = s.version();
                    }
                });
            }
            let mut writer = session();
            for _ in 0..200 {
                writer
                    .apply(UpdateBatch::insert_only(vec![tx(&[6, 7])]))
                    .unwrap();
                cell.store(writer.state_arc());
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(RuleSnapshot::from_state(cell.load()).version(), 200);
    }

    #[test]
    fn flush_outcomes_attribute_by_first_covering_round() {
        // A waiter must take the first round covering its ticket, so a
        // later round's failure is never misattributed to it (and a
        // later success never masks its own round's failure).
        let mut ctl = Ctl::default();
        let report = |v: u64| {
            let mut m = session();
            let mut r = m
                .apply(UpdateBatch::insert_only(vec![tx(&[6, 7])]))
                .unwrap();
            r.version = v;
            r
        };
        ctl.waiting.extend([2u64, 3]);
        ctl.outcomes.push((1, Ok(report(1)))); // covers ticket 1 only
        ctl.outcomes.push((2, Err(Error::DeletionsDisabled))); // covers 2
        ctl.outcomes.push((3, Ok(report(3)))); // covers 3
                                               // Ticket 2 takes the failing round 2, not the later success.
        let (covered, outcome) = ctl
            .outcomes
            .iter()
            .find(|&&(c, _)| c >= 2)
            .expect("covered");
        assert_eq!(*covered, 2);
        assert!(outcome.is_err());
        // Ticket 3 takes round 3's success.
        let (_, outcome) = ctl
            .outcomes
            .iter()
            .find(|&&(c, _)| c >= 3)
            .expect("covered");
        assert_eq!(outcome.as_ref().unwrap().version, 3);
        // Pruning keeps everything the smallest waiting ticket may need…
        ctl.prune_outcomes();
        assert_eq!(ctl.outcomes.len(), 2);
        assert_eq!(ctl.outcomes[0].0, 2);
        // …and clears the history once nobody waits.
        ctl.waiting.clear();
        ctl.prune_outcomes();
        assert!(ctl.outcomes.is_empty());
    }

    #[test]
    fn service_error_display_names_the_problem() {
        assert!(ServiceError::ZeroPendingTrigger
            .to_string()
            .contains("manual"));
        assert!(ServiceError::InvalidIncrementRatio(-2.0)
            .to_string()
            .contains("-2"));
        assert!(ServiceError::ShutDown.to_string().contains("shut down"));
        let e = ServiceError::Stage(Error::DeletionsDisabled);
        assert!(std::error::Error::source(&e).is_some());
    }
}

//! The concurrent ingestion service: a thread-safe layer over the
//! [`Maintainer`] session for deployments where updates arrive from many
//! threads and reads must never wait.
//!
//! A [`MaintainerService`] splits the session's three roles across
//! threads:
//!
//! * **Producers** call [`stage`](MaintainerService::stage) from any
//!   number of threads (`&self`). Batches land in the store's sharded,
//!   lock-striped staging area ([`fup_tidb::StagingArea`]) with the same
//!   arrival-time validation as [`Maintainer::stage`]; producers touch
//!   neither the live set nor the mined state, so they run concurrently
//!   with each other, with readers, and with a commit round mid-scan.
//! * **The committer** is one owned background thread that owns the
//!   [`Maintainer`]. Driven by a validating [`CommitPolicy`] — a pending
//!   ops trigger, an increment-ratio trigger mirroring FUP2's re-mine
//!   economics, and explicit [`flush`](MaintainerService::flush) — it
//!   drains shards in global arrival order and applies them as
//!   deterministic FUP/FUP2 rounds.
//! * **Readers** call [`snapshot`](MaintainerService::snapshot), served
//!   from an epoch-pinned snapshot cell: a read is a couple of atomic
//!   operations and an `Arc` clone, never a lock — commits swap the cell
//!   only after the round completes, so queries stay wait-free while a
//!   round is scanning.
//!
//! ## Overload behaviour: the bounded-latency pipeline
//!
//! Left alone, an open-loop producer fleet can outrun the committer:
//! the staged backlog grows without bound, and the one round that
//! finally drains it runs for as long as the backlog is deep. Two
//! policy knobs bound both ends:
//!
//! * [`CommitPolicy::staging_capacity`] caps staged ops. Producers then
//!   choose their backpressure: [`stage`](MaintainerService::stage)
//!   blocks until a round frees space,
//!   [`try_stage`](MaintainerService::try_stage) fails immediately with
//!   [`ServiceError::WouldBlock`], and
//!   [`stage_deadline`](MaintainerService::stage_deadline) waits only
//!   until a deadline ([`ServiceError::StageTimeout`]).
//! * [`CommitPolicy::ops_per_round`] chunks an oversized backlog into
//!   bounded rounds, preserving global arrival (ticket) order and
//!   delete claims across round boundaries — commit latency and the
//!   snapshot gap stop scaling with backlog depth. The one deliberate
//!   exception: a backlog that crosses the session's re-mine break-even
//!   (the paper's §4.5 economics, [`crate::UpdatePolicy`]) is handed to
//!   a *single* round so the update policy routes it to a full re-mine
//!   instead of grinding through FUP chunks a single Apriori pass would
//!   beat.
//!
//! ## Self-healing: degraded mode and committer supervision
//!
//! Degradation is typed, never silent — and where it can be, it is
//! temporary:
//!
//! * **Transient storage faults** are first absorbed by the durable
//!   log's own [`RetryPolicy`]. If a fault outlives
//!   the retry budget the service enters [`HealthState::Degraded`]:
//!   admissions close (producers get [`ServiceError::Degraded`], never
//!   a hang), snapshots keep serving, and the committer turns into a
//!   heal probe that re-checks storage on an exponential-backoff
//!   cadence. A successful probe installs a fresh checkpoint — session
//!   state *and* staged backlog in one atomic image — reopens
//!   admissions, and resumes durable rounds. No acknowledged commit is
//!   lost across the gap.
//! * **Committer panics** on a durable session are absorbed by a
//!   supervisor: it rebuilds the session through the crash-recovery
//!   path (replaying the WAL, re-adopting the staged backlog under its
//!   original tickets) and respawns the commit loop, up to
//!   [`CommitPolicy::max_committer_restarts`] times. Past the budget —
//!   or on a session with no durable storage to rebuild from — the
//!   service degrades permanently: parked and future producers fail
//!   with [`ServiceError::CommitterGone`] while snapshots keep serving
//!   the last published state.
//! * **Permanent storage faults** are terminal
//!   ([`HealthState::Failed`]): probing cannot help, so the service
//!   serves snapshots only and reports the condition through
//!   [`health`](MaintainerService::health).
//!
//! The service reports its own counters ([`ServiceMetrics`]): backlog
//! depth and its high-water mark, snapshot staleness in rounds,
//! per-round size and latency, backpressure rejections, and the
//! self-healing trio (transient retries absorbed, milliseconds spent
//! degraded, committer restarts survived), alongside the batch/round
//! totals.
//!
//! ```
//! use fup_core::service::{CommitPolicy, MaintainerService};
//! use fup_core::Maintainer;
//! use fup_mining::{MinConfidence, MinSupport};
//! use fup_tidb::{Transaction, UpdateBatch};
//!
//! let maintainer = Maintainer::builder()
//!     .min_support(MinSupport::percent(50))
//!     .min_confidence(MinConfidence::percent(70))
//!     .build(vec![
//!         Transaction::from_items([1u32, 2, 3]),
//!         Transaction::from_items([1u32, 2]),
//!         Transaction::from_items([2u32, 3]),
//!     ])
//!     .unwrap();
//! let service = MaintainerService::launch(maintainer, CommitPolicy::manual()).unwrap();
//!
//! // Producers stage concurrently (here: two scoped threads)...
//! std::thread::scope(|scope| {
//!     for _ in 0..2 {
//!         scope.spawn(|| {
//!             service
//!                 .stage(UpdateBatch::insert_only(vec![
//!                     Transaction::from_items([1u32, 3]),
//!                 ]))
//!                 .unwrap();
//!         });
//!     }
//! });
//! // ...readers never block...
//! assert_eq!(service.snapshot().version(), 0);
//! // ...and a flush forces rounds over everything staged.
//! let report = service.flush().unwrap();
//! assert_eq!(report.num_transactions, 5);
//! assert_eq!(service.snapshot().version(), 1);
//! let (maintainer, metrics) = service.shutdown();
//! assert_eq!(metrics.staged_inserts, 2);
//! assert_eq!(maintainer.len(), 5);
//! ```

use crate::durable::{LogState, RecoveryReport, RetryPolicy};
use crate::error::Error;
use crate::session::{
    Maintainer, MaintainerBuilder, MaintenanceReport, RecoverySpec, RuleSnapshot, SnapshotState,
    StageHandle,
};
use fup_tidb::{Admission, DurableStorage, FaultKind, UpdateBatch};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Committed-round latencies kept for percentile reporting (a bounded
/// ring — old rounds fall off the front).
const LATENCY_RING: usize = 65_536;

/// Errors of the service layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// A [`CommitPolicy`] pending-ops trigger of zero would commit
    /// forever; use [`CommitPolicy::manual`] to disable auto-commits.
    ZeroPendingTrigger,
    /// A [`CommitPolicy`] increment-ratio trigger was not a positive,
    /// finite number.
    InvalidIncrementRatio(f64),
    /// A [`CommitPolicy`] poll interval of zero would busy-spin the
    /// committer thread.
    ZeroPollInterval,
    /// A [`CommitPolicy`] round cap of zero ops could never drain any
    /// backlog.
    ZeroRoundCap,
    /// A [`CommitPolicy`] staging capacity of zero ops would reject
    /// every batch at arrival.
    ZeroStagingCapacity,
    /// A [`CommitPolicy`] adaptive latency target of zero would drive
    /// every round's ops cap to its floor regardless of load.
    ZeroAdaptiveTarget,
    /// A batch failed arrival-time validation and was not staged (wraps
    /// the session error, e.g. an unknown tid or
    /// [`Error::DeletionsDisabled`]).
    Stage(Error),
    /// [`try_stage`](MaintainerService::try_stage) found the staging
    /// area at its configured capacity; nothing was queued. Retry after
    /// a round drains, or fall back to a blocking path.
    WouldBlock {
        /// Staged ops occupying the gate when the batch was refused.
        pending: u64,
        /// The configured capacity ([`CommitPolicy::staging_capacity`]).
        capacity: u64,
    },
    /// [`stage_deadline`](MaintainerService::stage_deadline) waited for
    /// capacity until its deadline and gave up; nothing was queued.
    StageTimeout {
        /// Staged ops occupying the gate when the deadline expired.
        pending: u64,
        /// The configured capacity ([`CommitPolicy::staging_capacity`]).
        capacity: u64,
    },
    /// The round covering a [`flush`](MaintainerService::flush) failed;
    /// the staged work it drained was dropped (see
    /// [`ServiceMetrics::dropped_ops`]).
    Commit(Error),
    /// [`flush_timeout`](MaintainerService::flush_timeout) gave up
    /// waiting. Only the wait was abandoned: the staged work stays
    /// queued and its rounds keep running.
    FlushTimeout,
    /// The committer thread is gone (it panicked past its restart
    /// budget, or panicked on a non-durable session the supervisor
    /// cannot rebuild). Staging and flushing are permanently refused,
    /// but [`snapshot`](MaintainerService::snapshot) keeps serving the
    /// last published state.
    CommitterGone,
    /// The service is shutting down (or already shut down).
    ShutDown,
    /// Rebuilding the session from durable storage failed (wraps the
    /// session error — see
    /// [`MaintainerBuilder::recover`](crate::MaintainerBuilder::recover)).
    Recover(Error),
    /// The service is degraded: durable storage is failing (or the
    /// committer is mid-restart), so new work cannot be accepted right
    /// now. Unlike [`CommitterGone`](Self::CommitterGone) this may be
    /// temporary — a background probe keeps re-checking storage, and
    /// admissions reopen when it heals (watch
    /// [`health`](MaintainerService::health)). Snapshots keep serving
    /// throughout; nothing already acknowledged is lost.
    Degraded,
    /// [`stage_with_retry`](MaintainerService::stage_with_retry)
    /// exhausted its attempts; the batch was not staged. Carries the
    /// final error so shedding callers can still tell backpressure from
    /// degradation.
    RetriesExhausted {
        /// Attempts made before giving up (at least 1).
        attempts: u32,
        /// The error the final attempt failed with.
        last: Box<ServiceError>,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::ZeroPendingTrigger => write!(
                f,
                "pending-ops commit trigger of zero; use CommitPolicy::manual() to disable \
                 auto-commits"
            ),
            ServiceError::InvalidIncrementRatio(r) => {
                write!(f, "increment-ratio trigger {r} is not a positive number")
            }
            ServiceError::ZeroPollInterval => {
                write!(f, "a zero poll interval would busy-spin the committer")
            }
            ServiceError::ZeroRoundCap => write!(
                f,
                "a commit-round cap of zero ops could never drain a backlog"
            ),
            ServiceError::ZeroStagingCapacity => {
                write!(f, "a staging capacity of zero ops would reject every batch")
            }
            ServiceError::ZeroAdaptiveTarget => write!(
                f,
                "an adaptive latency target of zero would pin every round at its floor"
            ),
            ServiceError::Stage(e) => write!(f, "batch rejected at arrival: {e}"),
            ServiceError::WouldBlock { pending, capacity } => write!(
                f,
                "staging backlog at capacity ({pending}/{capacity} ops); retry after a round drains"
            ),
            ServiceError::StageTimeout { pending, capacity } => write!(
                f,
                "stage deadline expired with the backlog still at capacity \
                 ({pending}/{capacity} ops)"
            ),
            ServiceError::Commit(e) => write!(f, "commit round failed: {e}"),
            ServiceError::FlushTimeout => write!(
                f,
                "flush deadline expired before a covering round completed (the staged work \
                 remains queued)"
            ),
            ServiceError::CommitterGone => write!(
                f,
                "the committer thread is gone (it panicked); the service only serves snapshots now"
            ),
            ServiceError::ShutDown => write!(f, "the maintainer service is shut down"),
            ServiceError::Recover(e) => write!(f, "recovery failed before launch: {e}"),
            ServiceError::Degraded => write!(
                f,
                "the service is degraded (storage failing or committer restarting); \
                 snapshots keep serving and admissions reopen on heal"
            ),
            ServiceError::RetriesExhausted { attempts, last } => write!(
                f,
                "gave up staging after {attempts} attempt(s); last error: {last}"
            ),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Stage(e) | ServiceError::Commit(e) | ServiceError::Recover(e) => Some(e),
            ServiceError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

/// When the background committer turns staged batches into maintenance
/// rounds, and how much work any single round (or the staging area) may
/// hold. Triggers combine with OR; [`flush`](MaintainerService::flush)
/// always forces rounds regardless of policy.
///
/// The increment-ratio trigger mirrors the economics of the paper's §4.5
/// and Figure 4: FUP's advantage over re-mining is largest for increments
/// small relative to `DB`, so committing once the staged volume reaches a
/// fraction of the live database keeps every round in the regime the
/// incremental algorithms are built for.
/// [`ops_per_round`](Self::ops_per_round) and
/// [`staging_capacity`](Self::staging_capacity) bound the pipeline under
/// overload — see the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct CommitPolicy {
    /// Commit once staged inserts + deletes reach this count
    /// (`None` disables the trigger).
    pub max_pending_ops: Option<u64>,
    /// Commit once `staged / |DB|` reaches this ratio (`None` disables).
    pub max_increment_ratio: Option<f64>,
    /// Cap on staged ops a single commit round drains (`None` = a round
    /// takes everything). An oversized backlog is chunked into rounds of
    /// at most this many ops, in arrival order. Two exceptions: batches
    /// are atomic (their delete claims and validation are one unit), so
    /// a single batch larger than the cap travels alone; and a backlog
    /// past the session's re-mine break-even travels as one round so the
    /// [`crate::UpdatePolicy`] can route it to a full re-mine.
    pub max_ops_per_round: Option<u64>,
    /// Cap on ops the staging area holds (`None` = unbounded). At the
    /// cap, producers see backpressure instead of unbounded memory
    /// growth: blocking, failing, or timing out per their admission
    /// mode. A batch larger than the whole capacity is refused outright
    /// ([`ServiceError::WouldBlock`]) in every mode.
    pub max_staged_ops: Option<u64>,
    /// Target commit latency for **adaptive** round sizing (`None` =
    /// fixed rounds). When set, the committer derives each round's ops
    /// cap from the observed latency ring: the last round's op count is
    /// scaled by `target / observed` latency, so rounds grow while
    /// commits run under target and shrink when they run over. A
    /// configured [`max_ops_per_round`](Self::max_ops_per_round) stays
    /// in force as a hard ceiling, and is also the fallback before the
    /// ring holds a sample (one per committed round).
    pub adaptive_round_target: Option<Duration>,
    /// How often the committer re-checks triggers when idle (it is also
    /// woken eagerly by producers whose batch crosses a trigger).
    pub poll_interval: Duration,
    /// How many committer panics the supervisor may absorb by rebuilding
    /// the session through the durable recovery path and respawning the
    /// commit loop (see the [module docs](self)). Past the budget — or on
    /// a session without durable storage, which cannot be rebuilt — the
    /// service degrades permanently to
    /// [`ServiceError::CommitterGone`].
    pub max_committer_restarts: u32,
}

impl Default for CommitPolicy {
    /// Commit every 8 192 staged ops, or at a staged volume of 10 % of
    /// the live database, polling every 20 ms. Rounds and staging are
    /// unbounded (opt in with [`ops_per_round`](Self::ops_per_round) /
    /// [`staging_capacity`](Self::staging_capacity)).
    fn default() -> Self {
        CommitPolicy {
            max_pending_ops: Some(8_192),
            max_increment_ratio: Some(0.10),
            max_ops_per_round: None,
            max_staged_ops: None,
            adaptive_round_target: None,
            poll_interval: Duration::from_millis(20),
            max_committer_restarts: 3,
        }
    }
}

impl CommitPolicy {
    /// No automatic triggers: rounds happen only on
    /// [`flush`](MaintainerService::flush) (and at shutdown).
    pub fn manual() -> Self {
        CommitPolicy {
            max_pending_ops: None,
            max_increment_ratio: None,
            ..Self::default()
        }
    }

    /// This policy with the pending-ops trigger set to `n`.
    pub fn every_ops(mut self, n: u64) -> Self {
        self.max_pending_ops = Some(n);
        self
    }

    /// This policy with the increment-ratio trigger set to `ratio`.
    pub fn at_increment_ratio(mut self, ratio: f64) -> Self {
        self.max_increment_ratio = Some(ratio);
        self
    }

    /// This policy with commit rounds capped at `n` staged ops (see
    /// [`max_ops_per_round`](Self::max_ops_per_round)).
    pub fn ops_per_round(mut self, n: u64) -> Self {
        self.max_ops_per_round = Some(n);
        self
    }

    /// This policy with adaptive round sizing aimed at `target` commit
    /// latency (see
    /// [`adaptive_round_target`](Self::adaptive_round_target)). Pair it
    /// with [`ops_per_round`](Self::ops_per_round) to keep a hard
    /// ceiling on how far rounds may grow.
    pub fn adaptive_rounds(mut self, target: Duration) -> Self {
        self.adaptive_round_target = Some(target);
        self
    }

    /// This policy with the staging area capped at `n` staged ops (see
    /// [`max_staged_ops`](Self::max_staged_ops)). A capacity without any
    /// commit trigger means only flushes free space — blocking producers
    /// on a [`manual`](Self::manual) policy wait until someone flushes.
    pub fn staging_capacity(mut self, n: u64) -> Self {
        self.max_staged_ops = Some(n);
        self
    }

    /// This policy with an explicit idle poll interval.
    pub fn with_poll_interval(mut self, interval: Duration) -> Self {
        self.poll_interval = interval;
        self
    }

    /// This policy with the committer-panic restart budget set to `n`
    /// (see [`max_committer_restarts`](Self::max_committer_restarts);
    /// `0` disables supervision entirely).
    pub fn committer_restarts(mut self, n: u32) -> Self {
        self.max_committer_restarts = n;
        self
    }

    /// Rejects configurations the committer cannot run.
    pub fn validate(&self) -> Result<(), ServiceError> {
        if self.max_pending_ops == Some(0) {
            return Err(ServiceError::ZeroPendingTrigger);
        }
        if let Some(r) = self.max_increment_ratio {
            if !r.is_finite() || r <= 0.0 {
                return Err(ServiceError::InvalidIncrementRatio(r));
            }
        }
        if self.max_ops_per_round == Some(0) {
            return Err(ServiceError::ZeroRoundCap);
        }
        if self.max_staged_ops == Some(0) {
            return Err(ServiceError::ZeroStagingCapacity);
        }
        if self.adaptive_round_target.is_some_and(|t| t.is_zero()) {
            return Err(ServiceError::ZeroAdaptiveTarget);
        }
        if self.poll_interval.is_zero() {
            return Err(ServiceError::ZeroPollInterval);
        }
        Ok(())
    }

    /// `true` if `pending` staged ops over a `live`-transaction database
    /// cross any configured trigger.
    fn triggered(&self, pending: u64, live: u64) -> bool {
        if pending == 0 {
            return false;
        }
        if self.max_pending_ops.is_some_and(|n| pending >= n) {
            return true;
        }
        self.max_increment_ratio
            .is_some_and(|r| pending as f64 >= r * live as f64)
    }
}

/// A point-in-time copy of the service's counters (see
/// [`MaintainerService::metrics`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Batches accepted by [`stage`](MaintainerService::stage).
    pub staged_batches: u64,
    /// Transactions staged for insertion.
    pub staged_inserts: u64,
    /// Deletions staged.
    pub staged_deletes: u64,
    /// Batches rejected at arrival-time validation (nothing was queued).
    pub rejected_batches: u64,
    /// Batches refused or timed out by the staging capacity gate
    /// ([`ServiceError::WouldBlock`] / [`ServiceError::StageTimeout`]).
    pub backpressure_rejections: u64,
    /// Staged ops not yet drained by a round, at the moment these
    /// metrics were read (a gauge, not a counter).
    pub backlog_ops: u64,
    /// High-water mark of the staged backlog, observed at admission.
    pub max_backlog_ops: u64,
    /// How many bounded rounds of draining the current backlog
    /// represents — the snapshot's staleness in rounds, at the moment
    /// these metrics were read (a gauge; with unbounded rounds it is 1
    /// whenever anything is staged).
    pub snapshot_staleness_rounds: u64,
    /// Maintenance rounds committed (including empty flush rounds).
    pub committed_rounds: u64,
    /// Transactions inserted by committed rounds.
    pub committed_inserts: u64,
    /// Deletions applied by committed rounds.
    pub committed_deletes: u64,
    /// Ops the most recent committed round applied.
    pub last_round_ops: u64,
    /// The largest number of ops any committed round applied. With a
    /// round cap this exceeds the cap only for a single atomic batch
    /// bigger than the cap (batches never split across rounds) or for
    /// rounds deliberately routed to the re-mine path (see
    /// [`CommitPolicy::max_ops_per_round`]).
    pub max_round_ops: u64,
    /// Rounds that failed after draining (their staged work was dropped).
    pub dropped_rounds: u64,
    /// Staged ops consumed by failed rounds.
    pub dropped_ops: u64,
    /// Wall-clock microseconds of the most recent committed round.
    pub last_commit_micros: u64,
    /// Cumulative wall-clock microseconds across committed rounds.
    pub total_commit_micros: u64,
    /// From-scratch vertical index builds in the underlying session.
    pub index_builds: u64,
    /// In-place vertical index extends in the underlying session.
    pub index_extends: u64,
    /// Transient storage faults absorbed by the durable log's
    /// [`RetryPolicy`] without surfacing to any caller (0 on a session
    /// without durable storage).
    pub transient_retries: u64,
    /// Cumulative wall-clock milliseconds spent with admissions closed
    /// awaiting a heal (degraded or mid-restart), including the
    /// currently open window if the service is degraded right now.
    pub degraded_ms: u64,
    /// Committer panics survived by a supervised restart (see
    /// [`CommitPolicy::max_committer_restarts`]).
    pub committer_restarts: u64,
}

#[derive(Debug, Default)]
struct MetricsAtomics {
    staged_batches: AtomicU64,
    staged_inserts: AtomicU64,
    staged_deletes: AtomicU64,
    rejected_batches: AtomicU64,
    backpressure_rejections: AtomicU64,
    max_backlog_ops: AtomicU64,
    committed_rounds: AtomicU64,
    committed_inserts: AtomicU64,
    committed_deletes: AtomicU64,
    last_round_ops: AtomicU64,
    max_round_ops: AtomicU64,
    dropped_rounds: AtomicU64,
    dropped_ops: AtomicU64,
    last_commit_micros: AtomicU64,
    total_commit_micros: AtomicU64,
    index_builds: AtomicU64,
    index_extends: AtomicU64,
}

impl MetricsAtomics {
    /// The counter half of [`ServiceMetrics`]; the gauges (`backlog_ops`,
    /// `snapshot_staleness_rounds`) are filled by
    /// [`Shared::metrics_snapshot`], which can see the staging area.
    fn snapshot(&self) -> ServiceMetrics {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServiceMetrics {
            staged_batches: load(&self.staged_batches),
            staged_inserts: load(&self.staged_inserts),
            staged_deletes: load(&self.staged_deletes),
            rejected_batches: load(&self.rejected_batches),
            backpressure_rejections: load(&self.backpressure_rejections),
            backlog_ops: 0,
            max_backlog_ops: load(&self.max_backlog_ops),
            snapshot_staleness_rounds: 0,
            committed_rounds: load(&self.committed_rounds),
            committed_inserts: load(&self.committed_inserts),
            committed_deletes: load(&self.committed_deletes),
            last_round_ops: load(&self.last_round_ops),
            max_round_ops: load(&self.max_round_ops),
            dropped_rounds: load(&self.dropped_rounds),
            dropped_ops: load(&self.dropped_ops),
            last_commit_micros: load(&self.last_commit_micros),
            total_commit_micros: load(&self.total_commit_micros),
            index_builds: load(&self.index_builds),
            index_extends: load(&self.index_extends),
            transient_retries: 0,
            degraded_ms: 0,
            committer_restarts: 0,
        }
    }
}

/// The coarse condition of a running service (see
/// [`MaintainerService::health`]). States are ordered by severity;
/// [`Failed`](Self::Failed) is terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Normal operation: admissions open, rounds committing durably.
    Healthy,
    /// Durable storage is failing transiently: admissions are closed and
    /// a background probe re-checks storage on a backoff cadence.
    /// Snapshots keep serving; admissions reopen on heal.
    Degraded,
    /// The committer panicked and the supervisor is rebuilding the
    /// session from durable storage. Admissions are closed until the
    /// restarted committer adopts the staged backlog.
    Restarting,
    /// Terminal: a permanent storage fault, or the committer died past
    /// its restart budget. The service serves snapshots only.
    Failed,
}

const HEALTH_HEALTHY: u8 = 0;
const HEALTH_DEGRADED: u8 = 1;
const HEALTH_RESTARTING: u8 = 2;
const HEALTH_FAILED: u8 = 3;

impl HealthState {
    /// The stable lower-case name used by [`HealthReport`] renderings:
    /// `"healthy"`, `"degraded"`, `"restarting"`, or `"failed"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Restarting => "restarting",
            HealthState::Failed => "failed",
        }
    }

    fn decode(raw: u8) -> HealthState {
        match raw {
            HEALTH_HEALTHY => HealthState::Healthy,
            HEALTH_DEGRADED => HealthState::Degraded,
            HEALTH_RESTARTING => HealthState::Restarting,
            _ => HealthState::Failed,
        }
    }
}

/// The opt-in observer installed by
/// [`MaintainerService::on_health_change`].
type HealthCallback = Arc<dyn Fn(HealthState, HealthState) + Send + Sync>;

/// A point-in-time health report (see [`MaintainerService::health`]):
/// the condition plus the self-healing counters behind it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceHealth {
    /// The service condition right now.
    pub state: HealthState,
    /// Failed heal probes since the service last left
    /// [`HealthState::Healthy`] (0 while healthy) — the probe's backoff
    /// exponent.
    pub consecutive_failures: u64,
    /// Transient storage faults absorbed by retries (the
    /// [`ServiceMetrics::transient_retries`] counter).
    pub transient_retries: u64,
    /// Cumulative milliseconds spent degraded or restarting, including
    /// the currently open window.
    pub degraded_ms: u64,
    /// Committer panics survived by a supervised restart.
    pub committer_restarts: u64,
}

/// One shard's slice of a [`HealthReport`]: committed ops, the backlog
/// routed to it, and a liveness state. In-process sessions report every
/// shard `"up"`; the cluster runtime ([`crate::cluster::Cluster`])
/// reports `"down"` for a killed worker until it rejoins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard index (position in the [`fup_tidb::ShardSpec`]).
    pub shard: usize,
    /// Update operations (inserts + deletes) committed into this shard
    /// since the session/cluster started.
    pub ops: u64,
    /// Pending operations currently routed to this shard (staged
    /// batches, prospectively routed; plus any parked retry round).
    pub backlog: u64,
    /// `"up"` or `"down"` (fixed strings — no escaping needed in the
    /// JSON rendering).
    pub state: &'static str,
}

/// A combined, renderable view of [`ServiceHealth`] and
/// [`ServiceMetrics`] (see [`MaintainerService::health_report`]).
///
/// Both renderings are **stable**: keys keep their names and relative
/// order across versions, new keys only ever append to their section —
/// safe to scrape from logs or serve from a monitoring endpoint. The
/// JSON is hand-rolled (every value is an unsigned integer or one of
/// a few fixed strings, so no escaping is ever needed) to keep the
/// core dependency-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// The self-healing state machine's condition and counters.
    pub health: ServiceHealth,
    /// The staging/commit counters and gauges.
    pub metrics: ServiceMetrics,
    /// Per-shard gauges, shard order (one entry for a flat session).
    /// Appended after the `metrics` section in both renderings.
    pub shards: Vec<ShardHealth>,
}

impl HealthReport {
    /// The health section's counters, in rendering order.
    fn health_fields(&self) -> [(&'static str, u64); 4] {
        let h = &self.health;
        [
            ("consecutive_failures", h.consecutive_failures),
            ("transient_retries", h.transient_retries),
            ("degraded_ms", h.degraded_ms),
            ("committer_restarts", h.committer_restarts),
        ]
    }

    /// The metrics section's counters and gauges, in rendering order
    /// (declaration order of [`ServiceMetrics`]).
    fn metric_fields(&self) -> [(&'static str, u64); 22] {
        let m = &self.metrics;
        [
            ("staged_batches", m.staged_batches),
            ("staged_inserts", m.staged_inserts),
            ("staged_deletes", m.staged_deletes),
            ("rejected_batches", m.rejected_batches),
            ("backpressure_rejections", m.backpressure_rejections),
            ("backlog_ops", m.backlog_ops),
            ("max_backlog_ops", m.max_backlog_ops),
            ("snapshot_staleness_rounds", m.snapshot_staleness_rounds),
            ("committed_rounds", m.committed_rounds),
            ("committed_inserts", m.committed_inserts),
            ("committed_deletes", m.committed_deletes),
            ("last_round_ops", m.last_round_ops),
            ("max_round_ops", m.max_round_ops),
            ("dropped_rounds", m.dropped_rounds),
            ("dropped_ops", m.dropped_ops),
            ("last_commit_micros", m.last_commit_micros),
            ("total_commit_micros", m.total_commit_micros),
            ("index_builds", m.index_builds),
            ("index_extends", m.index_extends),
            ("transient_retries", m.transient_retries),
            ("degraded_ms", m.degraded_ms),
            ("committer_restarts", m.committer_restarts),
        ]
    }

    /// The plain-text rendering: one `section.key: value` line per
    /// field, starting with `health.state`. Also what [`Display`]
    /// prints.
    ///
    /// [`Display`]: std::fmt::Display
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("health.state: ");
        out.push_str(self.health.state.as_str());
        out.push('\n');
        for (key, value) in self.health_fields() {
            out.push_str(&format!("health.{key}: {value}\n"));
        }
        for (key, value) in self.metric_fields() {
            out.push_str(&format!("metrics.{key}: {value}\n"));
        }
        for s in &self.shards {
            out.push_str(&format!("shards.{}.ops: {}\n", s.shard, s.ops));
            out.push_str(&format!("shards.{}.backlog: {}\n", s.shard, s.backlog));
            out.push_str(&format!("shards.{}.state: {}\n", s.shard, s.state));
        }
        out
    }

    /// The JSON rendering: one object with a `health` and a `metrics`
    /// sub-object, all values integers except `health.state`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"health\":{\"state\":\"");
        out.push_str(self.health.state.as_str());
        out.push('"');
        for (key, value) in self.health_fields() {
            out.push_str(&format!(",\"{key}\":{value}"));
        }
        out.push_str("},\"metrics\":{");
        let mut first = true;
        for (key, value) in self.metric_fields() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{key}\":{value}"));
        }
        out.push_str("},\"shards\":[");
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"shard\":{},\"ops\":{},\"backlog\":{},\"state\":\"{}\"}}",
                s.shard, s.ops, s.backlog, s.state
            ));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for HealthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// The lock-free half of the health report, plus the one mutex guarding
/// the open degraded-time window.
#[derive(Debug, Default)]
struct HealthAtomics {
    state: AtomicU8,
    consecutive_failures: AtomicU64,
    /// Completed degraded windows, in milliseconds.
    degraded_ms: AtomicU64,
    /// When the current degraded window opened (`None` while healthy).
    degraded_since: Mutex<Option<Instant>>,
    restarts: AtomicU64,
}

impl HealthAtomics {
    fn state(&self) -> HealthState {
        HealthState::decode(self.state.load(Ordering::SeqCst))
    }

    fn degraded_since(&self) -> MutexGuard<'_, Option<Instant>> {
        self.degraded_since
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Enters `Degraded` or `Restarting`, opening the degraded-time
    /// window if it is not already open. `Failed` is terminal and never
    /// downgraded. Returns the `(from, to)` pair of the transition so
    /// the caller can notify observers (equal when nothing changed).
    fn enter(&self, state: u8) -> (HealthState, HealthState) {
        let prev = self
            .state
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |current| {
                (current != HEALTH_FAILED).then_some(state)
            });
        let mut since = self.degraded_since();
        if since.is_none() {
            *since = Some(Instant::now());
        }
        match prev {
            Ok(raw) => (HealthState::decode(raw), HealthState::decode(state)),
            Err(_) => (HealthState::Failed, HealthState::Failed),
        }
    }

    /// Closes the open degraded-time window, folding it into the total.
    fn close_window(&self) {
        if let Some(opened) = self.degraded_since().take() {
            self.degraded_ms
                .fetch_add(opened.elapsed().as_millis() as u64, Ordering::Relaxed);
        }
    }

    /// Back to `Healthy` (unless terminally failed): close the window,
    /// clear the probe-failure streak. Returns the transition pair.
    fn heal(&self) -> (HealthState, HealthState) {
        let prev = self
            .state
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |current| {
                (current != HEALTH_FAILED).then_some(HEALTH_HEALTHY)
            });
        self.close_window();
        self.consecutive_failures.store(0, Ordering::Relaxed);
        match prev {
            Ok(raw) => (HealthState::decode(raw), HealthState::Healthy),
            Err(_) => (HealthState::Failed, HealthState::Failed),
        }
    }

    /// Terminal failure: the window closes (degraded time measures the
    /// recoverable condition) and the state never changes again.
    /// Returns the transition pair.
    fn fail_terminal(&self) -> (HealthState, HealthState) {
        let raw = self.state.swap(HEALTH_FAILED, Ordering::SeqCst);
        self.close_window();
        (HealthState::decode(raw), HealthState::Failed)
    }

    /// Completed degraded milliseconds plus the currently open window.
    fn degraded_ms_now(&self) -> u64 {
        let open = self
            .degraded_since()
            .map_or(0, |opened| opened.elapsed().as_millis() as u64);
        self.degraded_ms.load(Ordering::Relaxed) + open
    }
}

/// An epoch-pinned pointer cell holding the current `Arc<SnapshotState>`.
///
/// Readers never lock: a load is epoch-read → pin (one `fetch_add`) →
/// epoch re-check → pointer load → `Arc` clone → unpin. The single
/// writer (the committer) swaps the pointer, advances the epoch, and
/// spins until the *retired* epoch's pin count drains before dropping
/// the old `Arc` — an RCU-style grace period that costs the writer, not
/// the readers.
///
/// ## Safety argument
///
/// The hazard is a reader cloning from an `Arc` the writer has already
/// dropped. All cell operations use `SeqCst`, so a total order exists.
/// A reader only dereferences the pointer after (a) pinning parity
/// `e & 1` and (b) re-loading the epoch and observing it still equal to
/// `e`. Consider the writer's store #`e + 1` (the one advancing the
/// epoch from `e`): it retires parity `e & 1` and waits for that pin
/// count to reach zero *after* swapping in the new pointer. The reader's
/// pin precedes its revalidating epoch load, which observed a value
/// (`e`) older than store #`e + 1`'s increment — so the pin is ordered
/// before the wait-loop's loads and the writer blocks until the reader
/// unpins. The pointer the reader loaded is either the pre-swap value
/// (freed by store #`e + 1`, which waits) or the post-swap value (freed
/// by store #`e + 2`, which cannot *start* until store #`e + 1`
/// completes its wait). Either way the free is ordered after the
/// reader's unpin, which follows the clone. A reader whose revalidation
/// fails unpins and retries without ever dereferencing.
struct SnapshotCell {
    ptr: AtomicPtr<SnapshotState>,
    epoch: AtomicUsize,
    pins: [AtomicUsize; 2],
    /// Serialises writers (defence in depth — the committer is the only
    /// writer by construction).
    writer: Mutex<()>,
}

impl SnapshotCell {
    fn new(state: Arc<SnapshotState>) -> Self {
        SnapshotCell {
            ptr: AtomicPtr::new(Arc::into_raw(state).cast_mut()),
            epoch: AtomicUsize::new(0),
            pins: [AtomicUsize::new(0), AtomicUsize::new(0)],
            writer: Mutex::new(()),
        }
    }

    fn load(&self) -> Arc<SnapshotState> {
        loop {
            let e = self.epoch.load(Ordering::SeqCst);
            let slot = &self.pins[e & 1];
            slot.fetch_add(1, Ordering::SeqCst);
            if self.epoch.load(Ordering::SeqCst) == e {
                let ptr = self.ptr.load(Ordering::SeqCst);
                // SAFETY: the epoch-validated pin above guarantees the
                // writer's grace period waits for this reader before the
                // Arc behind `ptr` can be dropped (see the type docs).
                let borrowed = unsafe { Arc::from_raw(ptr) };
                let out = Arc::clone(&borrowed);
                std::mem::forget(borrowed);
                slot.fetch_sub(1, Ordering::SeqCst);
                return out;
            }
            // A store completed between the epoch read and the pin; the
            // pin may be on a retired parity no writer waits for, so it
            // must not be used. Retry against the new epoch.
            slot.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn store(&self, state: Arc<SnapshotState>) {
        let _writer = self.writer.lock().expect("snapshot cell writer poisoned");
        let old = self
            .ptr
            .swap(Arc::into_raw(state).cast_mut(), Ordering::SeqCst);
        let retired = self.epoch.fetch_add(1, Ordering::SeqCst) & 1;
        // Grace period: readers pinned on the retired parity may still be
        // cloning the old Arc; their critical section is a few atomic ops
        // long, so spin-yield until it drains.
        while self.pins[retired].load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        // SAFETY: `old` came from `Arc::into_raw` (in `new` or an earlier
        // `store`), the swap removed the cell's reference, and the grace
        // period above ordered every borrowing reader's unpin before this
        // point.
        unsafe { drop(Arc::from_raw(old)) };
    }
}

impl Drop for SnapshotCell {
    fn drop(&mut self) {
        // SAFETY: exclusive access; the pointer holds the cell's own
        // reference from `new`/`store`.
        unsafe { drop(Arc::from_raw(self.ptr.load(Ordering::SeqCst))) };
    }
}

/// Committer-side control state, guarded by one mutex.
#[derive(Debug, Default)]
struct Ctl {
    stop: bool,
    /// Flush tickets issued to waiters.
    flush_requested: u64,
    /// Highest flush ticket covered by a completed round.
    flush_completed: u64,
    /// Tickets with a waiter currently blocked in `flush`.
    waiting: std::collections::BTreeSet<u64>,
    /// Per-round outcomes, as `(highest ticket covered, result)` in round
    /// order — a waiter for ticket `t` takes the *first* entry covering
    /// `t`, so a later round's failure (or success) is never
    /// misattributed to an earlier flush. Pruned to what blocked waiters
    /// can still need (empty whenever nobody waits).
    outcomes: Vec<(u64, Result<MaintenanceReport, Error>)>,
    /// Failed rounds so far. A flush compares this against its value at
    /// ticket issuance: work the flush means to cover may have been
    /// drained — and dropped — by a round that *started* before the
    /// ticket existed, whose failure its covering round would otherwise
    /// mask (rounds are serial, so that failure is recorded before any
    /// covering round runs).
    rounds_failed: u64,
    /// The most recent failed round's error, for the comparison above.
    last_round_error: Option<Error>,
}

impl Ctl {
    /// Drops outcome entries no blocked waiter can take: everything
    /// before the first entry covering the smallest waiting ticket.
    fn prune_outcomes(&mut self) {
        match self.waiting.iter().next().copied() {
            None => self.outcomes.clear(),
            Some(min) => {
                let first_needed = self
                    .outcomes
                    .iter()
                    .position(|&(covered, _)| covered >= min)
                    .unwrap_or(self.outcomes.len());
                self.outcomes.drain(..first_needed);
            }
        }
    }
}

struct Shared {
    /// The producers' staging path. Behind an `RwLock` only because a
    /// supervised committer restart swaps in the recovered session's
    /// handle; every other access is a read.
    handle: RwLock<StageHandle>,
    policy: CommitPolicy,
    cell: SnapshotCell,
    metrics: MetricsAtomics,
    /// Committed-round wall-clock micros, oldest first, for percentile
    /// reporting (bounded to [`LATENCY_RING`] entries).
    latencies: Mutex<VecDeque<u64>>,
    /// `|DB|` after the last committed round, for the ratio trigger.
    live_len: AtomicU64,
    stopping: AtomicBool,
    /// Raised by [`CommitterGuard`] if the committer thread panics: the
    /// service degrades to snapshot-only instead of hanging producers.
    committer_gone: AtomicBool,
    /// Producers currently inside `stage` — the shutdown drain waits for
    /// this to reach zero so no accepted batch can miss the final round.
    in_flight: AtomicU64,
    ctl: Mutex<Ctl>,
    /// Wakes the committer (producer crossed a trigger, flush, stop).
    work_cv: Condvar,
    /// Wakes flush waiters (a round completed, or stop).
    done_cv: Condvar,
    /// The self-healing state machine: degraded/restarting/failed plus
    /// the counters [`MaintainerService::health`] reports.
    health: HealthAtomics,
    /// Opt-in observer fired on every health-state transition (see
    /// [`MaintainerService::on_health_change`]). `None` until installed.
    on_health_change: RwLock<Option<HealthCallback>>,
    /// Fault-injection hook: makes the committer's next wakeup panic,
    /// exercising the supervision path without contriving a real bug
    /// (see [`MaintainerService::debug_kill_committer`]).
    kill_committer: AtomicBool,
    /// Per-shard gauges for [`HealthReport::shards`], refreshed by the
    /// committer after every round (and seeded at launch).
    shard_gauges: Mutex<Vec<ShardHealth>>,
}

/// RAII decrement of `Shared::in_flight`, covering every exit path of
/// [`MaintainerService::stage`].
struct InFlightGuard<'a>(&'a AtomicU64);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Shared {
    /// The control mutex, recovering from poison. A committer that
    /// panicked mid-section has already recorded its death (see
    /// [`CommitterGuard`]); producers and waiters must keep failing fast
    /// with [`ServiceError::CommitterGone`], not panic in sympathy.
    fn lock_ctl(&self) -> MutexGuard<'_, Ctl> {
        self.ctl.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The current staging handle (a cheap clone — two `Arc`s and a
    /// flag). Cloned out of the lock so no caller holds the read guard
    /// across a blocking admission wait.
    fn stage_handle(&self) -> StageHandle {
        self.handle
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn triggered(&self) -> bool {
        let (i, d) = self.stage_handle().pending_ops();
        self.policy
            .triggered(i + d, self.live_len.load(Ordering::Relaxed))
    }

    /// The full [`ServiceMetrics`]: counters plus the point-in-time
    /// gauges (backlog depth, snapshot staleness in rounds, health
    /// counters).
    fn metrics_snapshot(&self) -> ServiceMetrics {
        let mut m = self.metrics.snapshot();
        let handle = self.stage_handle();
        let (i, d) = handle.pending_ops();
        m.backlog_ops = i + d;
        m.snapshot_staleness_rounds = match self.policy.max_ops_per_round {
            Some(cap) => m.backlog_ops.div_ceil(cap),
            None => u64::from(m.backlog_ops > 0),
        };
        m.transient_retries = handle
            .durable_log()
            .map_or(0, |log| log.transient_retries());
        m.degraded_ms = self.health.degraded_ms_now();
        m.committer_restarts = self.health.restarts.load(Ordering::Relaxed);
        m
    }

    /// The full [`ServiceHealth`] report.
    fn health_snapshot(&self) -> ServiceHealth {
        ServiceHealth {
            state: self.health.state(),
            consecutive_failures: self.health.consecutive_failures.load(Ordering::Relaxed),
            transient_retries: self
                .stage_handle()
                .durable_log()
                .map_or(0, |log| log.transient_retries()),
            degraded_ms: self.health.degraded_ms_now(),
            committer_restarts: self.health.restarts.load(Ordering::Relaxed),
        }
    }

    /// Fires the opt-in health observer for a real transition. Called
    /// after the service's own bookkeeping (admission gates, condvar
    /// wakeups) and outside every service lock, so a callback can read
    /// health/metrics without deadlocking — it only must not block.
    fn notify_health(&self, from: HealthState, to: HealthState) {
        if from == to {
            return;
        }
        let callback = self
            .on_health_change
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        if let Some(callback) = callback {
            callback(from, to);
        }
    }

    /// Storage started failing transiently: close admissions (parked
    /// producers fail typed, new ones are refused) and wake everyone so
    /// flush waiters observe the degradation instead of blocking on
    /// rounds that cannot commit durably.
    fn on_degraded(&self) {
        let (from, to) = self.health.enter(HEALTH_DEGRADED);
        self.stage_handle().staging_area().close_admissions();
        {
            let _ctl = self.lock_ctl();
            self.work_cv.notify_all();
            self.done_cv.notify_all();
        }
        self.notify_health(from, to);
    }

    /// Storage answered again: reopen admissions (unless shutdown or a
    /// terminal committer death got there first) and resume.
    fn on_healed(&self) {
        if !self.stopping.load(Ordering::SeqCst) && !self.committer_gone.load(Ordering::SeqCst) {
            self.stage_handle().staging_area().reopen_admissions();
        }
        let (from, to) = self.health.heal();
        {
            let _ctl = self.lock_ctl();
            self.work_cv.notify_all();
            self.done_cv.notify_all();
        }
        self.notify_health(from, to);
    }

    /// A permanent storage fault: terminal. Admissions close for good;
    /// snapshots keep serving.
    fn on_failed(&self) {
        let (from, to) = self.health.fail_terminal();
        self.stage_handle().staging_area().close_admissions();
        {
            let _ctl = self.lock_ctl();
            self.work_cv.notify_all();
            self.done_cv.notify_all();
        }
        self.notify_health(from, to);
    }

    /// Swaps in a freshly recovered session after a committer panic: the
    /// new staging area takes over the service's capacity gate (closed
    /// until [`on_healed`](Self::on_healed) reopens it), the recovered
    /// state is published, and producers are routed to the new handle.
    /// The recovered staging area already holds the panicked round's
    /// staged backlog under its original tickets — nothing staged is
    /// lost, nothing acknowledged is reordered.
    fn adopt_recovered(&self, maintainer: &Maintainer) {
        let handle = maintainer.stage_handle();
        {
            let area = handle.staging_area();
            area.set_capacity(self.policy.max_staged_ops);
            area.close_admissions();
        }
        self.cell.store(maintainer.state_arc());
        self.live_len
            .store(maintainer.len() as u64, Ordering::Relaxed);
        *self.handle.write().unwrap_or_else(PoisonError::into_inner) = handle;
    }
}

/// Runs when the *supervisor* thread exits. A planned exit is a no-op;
/// on a panic that escapes the supervisor itself (committer panics are
/// caught and handled below it) this backstop records the death so the
/// service degrades instead of hanging: admissions close (producers
/// parked on a full gate fail over to [`ServiceError::CommitterGone`]),
/// `stop` is raised, and both condvars fire so flush waiters observe the
/// death. Snapshots keep serving — the cell's last published state
/// remains valid forever.
struct CommitterGuard<'a>(&'a Shared);

impl Drop for CommitterGuard<'_> {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        give_up(self.0);
    }
}

/// A running maintenance service: the session's staging, committing, and
/// serving split across threads. See the [module docs](self) for the
/// model and an example.
///
/// All methods take `&self`; share the service across producer and
/// reader threads by reference (e.g. [`std::thread::scope`]) or wrap it
/// in an [`Arc`]. Dropping the service without
/// [`shutdown`](Self::shutdown) stops the committer after a final drain
/// of everything staged.
pub struct MaintainerService {
    shared: Arc<Shared>,
    /// The supervisor thread. Returns `None` when the committer died
    /// past its restart budget (the [`ServiceError::CommitterGone`]
    /// state) instead of unwinding, so joining it cannot re-raise.
    committer: Option<JoinHandle<Option<Maintainer>>>,
}

impl fmt::Debug for MaintainerService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MaintainerService")
            .field("policy", &self.shared.policy)
            .field("metrics", &self.shared.metrics_snapshot())
            .finish_non_exhaustive()
    }
}

impl MaintainerService {
    /// Validates `policy` and launches the committer thread around
    /// `maintainer`. The session's current state becomes snapshot version
    /// 0 of the cell; [`shutdown`](Self::shutdown) hands the session
    /// back. A [`CommitPolicy::staging_capacity`] is installed on the
    /// session's staging area here and removed again at shutdown.
    pub fn launch(
        maintainer: Maintainer,
        policy: CommitPolicy,
    ) -> Result<MaintainerService, ServiceError> {
        policy.validate()?;
        let handle = maintainer.stage_handle();
        {
            let area = handle.staging_area();
            area.reopen_admissions();
            area.set_capacity(policy.max_staged_ops);
        }
        let shared = Arc::new(Shared {
            handle: RwLock::new(handle),
            policy,
            cell: SnapshotCell::new(maintainer.state_arc()),
            metrics: MetricsAtomics::default(),
            latencies: Mutex::new(VecDeque::new()),
            live_len: AtomicU64::new(maintainer.len() as u64),
            stopping: AtomicBool::new(false),
            committer_gone: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            ctl: Mutex::new(Ctl::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            health: HealthAtomics::default(),
            on_health_change: RwLock::new(None),
            kill_committer: AtomicBool::new(false),
            shard_gauges: Mutex::new(maintainer.shard_health()),
        });
        let committer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fup-committer".into())
                .spawn(move || supervised_committer(maintainer, &shared))
                .expect("spawning the committer thread")
        };
        Ok(MaintainerService {
            shared,
            committer: Some(committer),
        })
    }

    /// Rebuilds a durable session from `storage` (see
    /// [`MaintainerBuilder::recover`]) and launches the service around
    /// it — the one-call crash-restart path for a durable serving
    /// deployment. The recovered state (including any re-queued staged
    /// batches, which the policy's triggers see immediately) is snapshot
    /// version 0 of the cell.
    pub fn recover(
        builder: MaintainerBuilder,
        storage: Arc<dyn DurableStorage>,
        policy: CommitPolicy,
    ) -> Result<(MaintainerService, RecoveryReport), ServiceError> {
        policy.validate()?;
        let (maintainer, report) = builder.recover(storage).map_err(ServiceError::Recover)?;
        let service = MaintainerService::launch(maintainer, policy)?;
        Ok((service, report))
    }

    /// Queues a batch for an upcoming maintenance round. Thread-safe;
    /// producers contend only on a staging shard stripe. Validation
    /// failures reject the batch atomically at arrival. When a
    /// [`CommitPolicy::staging_capacity`] is configured and the gate is
    /// full, **blocks** until a commit round frees space — use
    /// [`try_stage`](Self::try_stage) or
    /// [`stage_deadline`](Self::stage_deadline) for bounded waiting.
    pub fn stage(&self, batch: UpdateBatch) -> Result<(), ServiceError> {
        self.stage_with(batch, Admission::Block)
    }

    /// Non-blocking [`stage`](Self::stage): if the staging area is at
    /// capacity, fails immediately with [`ServiceError::WouldBlock`]
    /// instead of waiting. The overload-shedding path for open-loop
    /// producers.
    pub fn try_stage(&self, batch: UpdateBatch) -> Result<(), ServiceError> {
        self.stage_with(batch, Admission::Try)
    }

    /// [`stage`](Self::stage) that waits for capacity only until
    /// `deadline`, then fails with [`ServiceError::StageTimeout`].
    pub fn stage_deadline(
        &self,
        batch: UpdateBatch,
        deadline: Instant,
    ) -> Result<(), ServiceError> {
        self.stage_with(batch, Admission::Deadline(deadline))
    }

    fn stage_with(&self, batch: UpdateBatch, admission: Admission) -> Result<(), ServiceError> {
        // Register in-flight *before* checking the stop flag (both
        // SeqCst): a producer that observed `stopping == false` is
        // visible to the shutdown drain's in-flight wait, so a batch this
        // method accepts is always covered by a round — it can never
        // slip in behind the committer's final drain.
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let guard = InFlightGuard(&self.shared.in_flight);
        if self.shared.committer_gone.load(Ordering::SeqCst) {
            return Err(ServiceError::CommitterGone);
        }
        if self.shared.stopping.load(Ordering::SeqCst) {
            return Err(ServiceError::ShutDown);
        }
        let inserts = batch.inserts.len() as u64;
        let deletes = batch.deletes.len() as u64;
        let handle = self.shared.stage_handle();
        if let Err(e) = handle.stage_with(batch, admission) {
            return Err(self.classify_stage_error(e));
        }
        let m = &self.shared.metrics;
        m.staged_batches.fetch_add(1, Ordering::Relaxed);
        m.staged_inserts.fetch_add(inserts, Ordering::Relaxed);
        m.staged_deletes.fetch_add(deletes, Ordering::Relaxed);
        let (pend_i, pend_d) = handle.pending_ops();
        m.max_backlog_ops
            .fetch_max(pend_i + pend_d, Ordering::Relaxed);
        drop(guard);
        if self.shared.triggered() {
            // Eager wakeup; the committer also polls, so a lost race here
            // only costs one poll interval.
            let _ctl = self.shared.lock_ctl();
            self.shared.work_cv.notify_one();
        }
        Ok(())
    }

    /// Sorts a failed admission into the service's error vocabulary and
    /// bumps the matching counter.
    fn classify_stage_error(&self, e: Error) -> ServiceError {
        let m = &self.shared.metrics;
        match e {
            Error::Store(fup_tidb::Error::WouldBlock { pending, capacity }) => {
                m.backpressure_rejections.fetch_add(1, Ordering::Relaxed);
                ServiceError::WouldBlock { pending, capacity }
            }
            Error::Store(fup_tidb::Error::StageTimeout { pending, capacity }) => {
                m.backpressure_rejections.fetch_add(1, Ordering::Relaxed);
                ServiceError::StageTimeout { pending, capacity }
            }
            // Admissions close for exactly three reasons: the committer
            // died for good, the service degraded awaiting a heal, or
            // shutdown began.
            Error::Store(fup_tidb::Error::StagingClosed) => {
                if self.shared.committer_gone.load(Ordering::SeqCst) {
                    ServiceError::CommitterGone
                } else if self.shared.health.state() != HealthState::Healthy {
                    m.backpressure_rejections.fetch_add(1, Ordering::Relaxed);
                    ServiceError::Degraded
                } else {
                    ServiceError::ShutDown
                }
            }
            // The staging WAL write hit storage trouble the log's own
            // retries could not absorb. Transient faults degrade the
            // service (a probe will heal it); permanent ones are
            // terminal. Either way the batch was not staged and the
            // producer gets a typed refusal, not a hang.
            Error::DurabilityDegraded
            | Error::Store(fup_tidb::Error::Io {
                kind: FaultKind::Transient,
                ..
            }) => {
                self.shared.on_degraded();
                m.backpressure_rejections.fetch_add(1, Ordering::Relaxed);
                ServiceError::Degraded
            }
            Error::Store(fup_tidb::Error::Io {
                kind: FaultKind::Permanent,
                ..
            })
            | Error::Recovery { .. } => {
                self.shared.on_failed();
                m.backpressure_rejections.fetch_add(1, Ordering::Relaxed);
                ServiceError::Degraded
            }
            e => {
                m.rejected_batches.fetch_add(1, Ordering::Relaxed);
                ServiceError::Stage(e)
            }
        }
    }

    /// A wait-free, version-stamped view of the current rules — never
    /// blocked by staging or by a commit round in progress, and valid
    /// forever once taken. Keeps serving (the last published state) even
    /// after [`ServiceError::CommitterGone`].
    pub fn snapshot(&self) -> RuleSnapshot {
        RuleSnapshot::from_state(self.shared.cell.load())
    }

    /// Forces maintenance rounds over everything staged so far and
    /// blocks until they complete, returning the last covering round's
    /// report (an empty round bumps the version and reports no changes).
    /// An oversized backlog is drained in bounded rounds per
    /// [`CommitPolicy::max_ops_per_round`]; concurrent flushes may be
    /// covered by one round.
    pub fn flush(&self) -> Result<MaintenanceReport, ServiceError> {
        self.flush_inner(None)
    }

    /// [`flush`](Self::flush) that waits at most `timeout`, then fails
    /// with [`ServiceError::FlushTimeout`]. Only the *wait* is
    /// abandoned: the staged work stays queued and the committer's
    /// rounds keep running, so a later flush (or trigger) still commits
    /// it.
    pub fn flush_timeout(&self, timeout: Duration) -> Result<MaintenanceReport, ServiceError> {
        self.flush_inner(Some(Instant::now() + timeout))
    }

    fn flush_inner(&self, deadline: Option<Instant>) -> Result<MaintenanceReport, ServiceError> {
        let mut ctl = self.shared.lock_ctl();
        if self.shared.committer_gone.load(Ordering::SeqCst) {
            return Err(ServiceError::CommitterGone);
        }
        if ctl.stop {
            return Err(ServiceError::ShutDown);
        }
        // A degraded service cannot commit durably: fail the flush typed
        // instead of parking the waiter on rounds that will not run. The
        // staged work stays queued — a flush after the heal covers it.
        if self.shared.health.state() != HealthState::Healthy {
            return Err(ServiceError::Degraded);
        }
        ctl.flush_requested += 1;
        let ticket = ctl.flush_requested;
        ctl.waiting.insert(ticket);
        let failed_at_issue = ctl.rounds_failed;
        self.shared.work_cv.notify_one();
        loop {
            // Take the outcome of the *first* round that covered this
            // ticket — never a later round's, whose failure (or success)
            // would say nothing about the work this flush staged. A
            // covering round that succeeded still fails the flush when
            // any round failed since the ticket was issued: such a round
            // may have drained — and dropped — work staged before this
            // call, and rounds are serial, so its failure is recorded by
            // the time the covering outcome exists.
            if let Some((_, outcome)) = ctl.outcomes.iter().find(|&&(covered, _)| covered >= ticket)
            {
                let result = match outcome {
                    Ok(_) if ctl.rounds_failed > failed_at_issue => Err(ServiceError::Commit(
                        ctl.last_round_error
                            .clone()
                            .expect("a counted failure recorded its error"),
                    )),
                    Ok(report) => Ok(report.clone()),
                    Err(e) => Err(ServiceError::Commit(e.clone())),
                };
                ctl.waiting.remove(&ticket);
                ctl.prune_outcomes();
                return result;
            }
            if self.shared.committer_gone.load(Ordering::SeqCst) {
                ctl.waiting.remove(&ticket);
                ctl.prune_outcomes();
                return Err(ServiceError::CommitterGone);
            }
            if self.shared.health.state() != HealthState::Healthy {
                // The service degraded while this flush waited; its
                // staged work stays queued for after the heal.
                ctl.waiting.remove(&ticket);
                ctl.prune_outcomes();
                return Err(ServiceError::Degraded);
            }
            if ctl.stop {
                ctl.waiting.remove(&ticket);
                ctl.prune_outcomes();
                return Err(ServiceError::ShutDown);
            }
            ctl = match deadline {
                None => self
                    .shared
                    .done_cv
                    .wait(ctl)
                    .unwrap_or_else(PoisonError::into_inner),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        ctl.waiting.remove(&ticket);
                        ctl.prune_outcomes();
                        return Err(ServiceError::FlushTimeout);
                    }
                    let (guard, _) = self
                        .shared
                        .done_cv
                        .wait_timeout(ctl, d - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    guard
                }
            };
        }
    }

    /// `(inserts, deletes)` staged and not yet drained by a round.
    pub fn pending_ops(&self) -> (u64, u64) {
        self.shared.stage_handle().pending_ops()
    }

    /// [`try_stage`](Self::try_stage) wrapped in a bounded
    /// backoff-and-jitter retry loop: backpressure refusals
    /// ([`WouldBlock`](ServiceError::WouldBlock) /
    /// [`StageTimeout`](ServiceError::StageTimeout)) and
    /// [`Degraded`](ServiceError::Degraded) refusals are retried per
    /// `retry`; anything else (validation, shutdown, a dead committer)
    /// fails immediately. Once the budget is spent the batch is shed
    /// with [`ServiceError::RetriesExhausted`] carrying the final error
    /// — the open-loop producer's patience-then-shed admission path.
    pub fn stage_with_retry(
        &self,
        batch: UpdateBatch,
        retry: RetryPolicy,
    ) -> Result<(), ServiceError> {
        if let Err(e) = retry.validate() {
            return Err(ServiceError::Stage(e.into()));
        }
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let err = match self.try_stage(batch.clone()) {
                Ok(()) => return Ok(()),
                Err(e) => e,
            };
            let retryable = matches!(
                err,
                ServiceError::WouldBlock { .. }
                    | ServiceError::StageTimeout { .. }
                    | ServiceError::Degraded
            );
            if !retryable {
                return Err(err);
            }
            if attempt >= retry.max_attempts {
                return Err(ServiceError::RetriesExhausted {
                    attempts: attempt,
                    last: Box::new(err),
                });
            }
            retry.pause(attempt);
        }
    }

    /// A point-in-time health report: the service condition
    /// ([`HealthState`]) plus the self-healing counters — transient
    /// retries absorbed, time spent degraded, committer restarts
    /// survived.
    pub fn health(&self) -> ServiceHealth {
        self.shared.health_snapshot()
    }

    /// One consistent [`HealthReport`] bundling [`health`](Self::health)
    /// and [`metrics`](Self::metrics), with stable plain-text
    /// ([`HealthReport::to_text`]) and JSON ([`HealthReport::to_json`])
    /// renderings for logs and monitoring endpoints.
    pub fn health_report(&self) -> HealthReport {
        HealthReport {
            health: self.shared.health_snapshot(),
            metrics: self.shared.metrics_snapshot(),
            shards: self
                .shared
                .shard_gauges
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
        }
    }

    /// Installs the opt-in health observer: `callback(from, to)` fires
    /// on every [`HealthState`] transition — degrading, healing,
    /// entering a supervised restart, or failing terminally — and never
    /// for a no-op re-entry of the current state. Replaces any
    /// previously installed observer.
    ///
    /// The callback runs synchronously on whichever thread drives the
    /// transition (a producer whose stage hit a storage fault, the
    /// committer's heal probe, the supervisor) after the service's own
    /// bookkeeping and outside its locks: it may read
    /// [`health`](Self::health) or [`metrics`](Self::metrics), but it
    /// must be fast and must not block on service operations like
    /// [`flush`](Self::flush).
    pub fn on_health_change<F>(&self, callback: F)
    where
        F: Fn(HealthState, HealthState) + Send + Sync + 'static,
    {
        *self
            .shared
            .on_health_change
            .write()
            .unwrap_or_else(PoisonError::into_inner) = Some(Arc::new(callback));
    }

    /// Fault injection for tests and chaos harnesses: the committer's
    /// next wakeup panics, exercising the supervised-restart path
    /// without contriving a real bug. Not part of the stable API.
    #[doc(hidden)]
    pub fn debug_kill_committer(&self) {
        self.shared.kill_committer.store(true, Ordering::SeqCst);
        let _ctl = self.shared.lock_ctl();
        self.shared.work_cv.notify_all();
    }

    /// A copy of the service counters, with the backlog and staleness
    /// gauges read at this instant.
    pub fn metrics(&self) -> ServiceMetrics {
        self.shared.metrics_snapshot()
    }

    /// Wall-clock microseconds of recent committed rounds, oldest first
    /// — the raw series behind p50/p99 commit-latency reporting. Bounded
    /// to the last 65 536 rounds.
    pub fn round_latencies(&self) -> Vec<u64> {
        self.shared
            .latencies
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .copied()
            .collect()
    }

    /// The active commit policy.
    pub fn policy(&self) -> &CommitPolicy {
        &self.shared.policy
    }

    /// Stops the committer — after final rounds draining anything still
    /// staged — and hands back the session plus the final counters. New
    /// [`stage`](Self::stage)/[`flush`](Self::flush) calls fail with
    /// [`ServiceError::ShutDown`] once shutdown begins; producers parked
    /// on a full staging gate are failed rather than left waiting for
    /// space that will never come.
    ///
    /// # Panics
    ///
    /// If the committer thread panicked (the
    /// [`ServiceError::CommitterGone`] state). Drop the service instead
    /// to discard a dead pipeline without re-raising its panic.
    pub fn shutdown(mut self) -> (Maintainer, ServiceMetrics) {
        let maintainer = self.stop_committer().expect("committer thread panicked");
        let metrics = self.shared.metrics_snapshot();
        (maintainer, metrics)
    }

    fn stop_committer(&mut self) -> std::thread::Result<Maintainer> {
        // SeqCst to pair with `stage`'s in-flight handshake: the
        // no-batch-misses-the-final-drain argument needs this store in
        // the same total order as the producers' flag loads.
        self.shared.stopping.store(true, Ordering::SeqCst);
        // Fail Block-mode producers parked on a full gate *before* the
        // committer waits out `in_flight`: a parked producer holds an
        // in-flight registration, and the final drain may never free the
        // space it is waiting for — without this, shutdown and the
        // sleeper deadlock.
        self.shared.stage_handle().staging_area().close_admissions();
        {
            let mut ctl = self.shared.lock_ctl();
            ctl.stop = true;
            self.shared.work_cv.notify_all();
            self.shared.done_cv.notify_all();
        }
        let joined = self
            .committer
            .take()
            .expect("committer joined twice")
            .join();
        // Hand the session back with a standalone staging gate:
        // admissions open, no service capacity.
        let area_handle = self.shared.stage_handle();
        let area = area_handle.staging_area();
        area.reopen_admissions();
        area.set_capacity(None);
        match joined {
            Ok(Some(maintainer)) => Ok(maintainer),
            // The supervisor exhausted the restart budget and returned
            // gracefully; surface it like the panic it absorbed.
            Ok(None) => Err(Box::new("committer died past its restart budget")),
            Err(panic) => Err(panic),
        }
    }
}

impl Drop for MaintainerService {
    fn drop(&mut self) {
        if self.committer.is_some() {
            // Shutdown without handing the session back; a committer
            // panic already unwound, so don't double-panic here.
            let _ = self.stop_committer();
        }
    }
}

/// Consumes a pending kill request (the fault-injection hook). `swap`
/// rather than `load` so a supervised restart does not immediately
/// re-kill the fresh committer.
fn test_kill_requested(shared: &Shared) -> bool {
    shared.kill_committer.swap(false, Ordering::SeqCst)
}

/// Terminal degradation (a committer panic with no restart budget left,
/// no durable storage to rebuild from, or shutdown already underway):
/// record the death, close admissions for good, raise `stop`, and wake
/// everyone so parked producers and flush waiters fail typed.
fn give_up(shared: &Shared) {
    shared.committer_gone.store(true, Ordering::SeqCst);
    let (from, to) = shared.health.fail_terminal();
    shared.stage_handle().staging_area().close_admissions();
    {
        let mut ctl = shared.lock_ctl();
        ctl.stop = true;
        shared.work_cv.notify_all();
        shared.done_cv.notify_all();
    }
    shared.notify_health(from, to);
}

/// Supervises the committer: runs [`committer_loop`] under
/// `catch_unwind` and, when it panics, rebuilds the session through the
/// durable recovery path and respawns the loop — up to
/// [`CommitPolicy::max_committer_restarts`] times. The recovered
/// session replays the WAL, so every acknowledged commit survives and
/// the staged backlog is re-adopted under its original tickets. A
/// session without durable storage cannot be rebuilt: its first panic
/// (like any panic past the budget, or during shutdown) goes straight
/// to [`give_up`].
fn supervised_committer(mut maintainer: Maintainer, shared: &Shared) -> Option<Maintainer> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    // Backstop: if the *supervisor* itself panics (recovery code, adopt
    // path), the guard still degrades the service instead of hanging
    // producers on a silently dead thread.
    let _death_watch = CommitterGuard(shared);
    let spec: Option<RecoverySpec> = maintainer.recovery_spec();
    let mut panics = 0u32;
    loop {
        match catch_unwind(AssertUnwindSafe(|| committer_loop(maintainer, shared))) {
            Ok(session) => return Some(session),
            Err(_panic) => {
                panics += 1;
                // Decide *before* touching any shared state whether a
                // restart is possible, so an unrecoverable death never
                // shows an intermediate Restarting state to producers.
                let restartable = spec.is_some()
                    && panics <= shared.policy.max_committer_restarts
                    && !shared.stopping.load(Ordering::SeqCst);
                if !restartable {
                    give_up(shared);
                    return None;
                }
                // Close the dead loop's admissions immediately: parked
                // producers fail over to `Degraded` instead of waiting on
                // a committer that no longer drains.
                let (from, to) = shared.health.enter(HEALTH_RESTARTING);
                shared.stage_handle().staging_area().close_admissions();
                {
                    let _ctl = shared.lock_ctl();
                    shared.done_cv.notify_all();
                }
                shared.notify_health(from, to);
                let spec = spec.as_ref().expect("restartable implies a recovery spec");
                match spec.builder.clone().recover(Arc::clone(&spec.storage)) {
                    Ok((recovered, _report)) => {
                        shared.adopt_recovered(&recovered);
                        shared.health.restarts.fetch_add(1, Ordering::Relaxed);
                        shared.on_healed();
                        maintainer = recovered;
                    }
                    Err(_recovery_failed) => {
                        give_up(shared);
                        return None;
                    }
                }
            }
        }
    }
}

/// The committer thread's main loop: wait for a trigger / flush / stop
/// (or, while degraded, for the next heal probe), run bounded rounds,
/// publish, repeat. Returns the session at shutdown.
fn committer_loop(mut maintainer: Maintainer, shared: &Shared) -> Maintainer {
    // Heal-probe schedule, local to this incarnation of the loop: when
    // the next probe is due (`None` = immediately) and how many probes
    // in a row have failed (the backoff exponent).
    let mut next_probe: Option<Instant> = None;
    let mut probe_failures: u32 = 0;
    loop {
        let stop = {
            let mut ctl = shared.lock_ctl();
            loop {
                if test_kill_requested(shared) {
                    drop(ctl); // release (don't poison) before dying
                    panic!("committer killed by test harness");
                }
                if ctl.stop {
                    break true;
                }
                match shared.health.state() {
                    HealthState::Healthy
                        if ctl.flush_requested > ctl.flush_completed || shared.triggered() =>
                    {
                        break false;
                    }
                    // Flushes and triggers cannot run durably while
                    // degraded; only a due heal probe leaves the wait.
                    HealthState::Degraded if next_probe.is_none_or(|due| Instant::now() >= due) => {
                        break false;
                    }
                    // Failed is terminal (Restarting never coexists with
                    // a live loop): idle until shutdown.
                    _ => {}
                }
                let (guard, _timeout) = shared
                    .work_cv
                    .wait_timeout(ctl, shared.policy.poll_interval)
                    .unwrap_or_else(PoisonError::into_inner);
                ctl = guard;
            }
        };
        if stop {
            // Producers that passed the stop check are still landing
            // batches (they registered in `in_flight` first); wait them
            // out so the final rounds provably drain everything `stage`
            // ever accepted. Producers parked on a full gate were already
            // failed by `stop_committer`'s close_admissions.
            while shared.in_flight.load(Ordering::SeqCst) != 0 {
                std::thread::yield_now();
            }
            // A degraded service gets one last heal attempt before the
            // final drain.
            if shared.health.state() == HealthState::Degraded && maintainer.try_heal().is_ok() {
                shared.on_healed();
            }
        } else if shared.health.state() == HealthState::Degraded {
            // The due probe: a successful heal re-checkpoints (state and
            // staged backlog together) and reopens admissions; a failure
            // backs the next probe off exponentially so dead storage is
            // not hammered.
            match maintainer.try_heal() {
                Ok(_) => {
                    shared.on_healed();
                    probe_failures = 0;
                    next_probe = None;
                }
                Err(_still_failing) => {
                    if maintainer.durability_state() == Some(LogState::Poisoned) {
                        shared.on_failed();
                        next_probe = None;
                    } else {
                        probe_failures += 1;
                        shared
                            .health
                            .consecutive_failures
                            .store(u64::from(probe_failures), Ordering::Relaxed);
                        let backoff = shared.policy.poll_interval
                            * 2u32.saturating_pow(probe_failures.min(6));
                        next_probe = Some(Instant::now() + backoff);
                    }
                }
            }
            continue;
        }
        let flush_pending = {
            let ctl = shared.lock_ctl();
            ctl.flush_requested > ctl.flush_completed
        };
        let (pend_i, pend_d) = shared.stage_handle().pending_ops();
        let pending = pend_i + pend_d;
        // While degraded or failed, rounds are skipped even at shutdown:
        // draining would burn staged records — already safe in the WAL —
        // into rounds whose durability cannot be acknowledged. Recovery
        // replays them instead.
        let healthy = shared.health.state() == HealthState::Healthy;
        if healthy && (flush_pending || (stop && pending > 0)) {
            // A flush (or the shutdown drain) covers *everything* staged,
            // in bounded rounds.
            drain_backlog(&mut maintainer, shared);
        } else if healthy && !stop && shared.triggered() {
            // A trigger runs one bounded round; if the backlog is still
            // over the trigger afterwards, the wait loop falls straight
            // through and the next round starts — with a stop/flush check
            // between rounds, which is what bounds flush latency.
            let ticket = shared.lock_ctl().flush_requested;
            let cap = round_cap(&maintainer, shared, pending);
            let hint = cap.map_or(pending, |c| pending.min(c));
            run_round(&mut maintainer, shared, cap, Some(ticket), hint);
        }
        if stop {
            // Unblock any flush waiter that raced shutdown (its staged
            // work was drained above, but no round was dedicated to its
            // ticket — it reports ShutDown).
            let mut ctl = shared.lock_ctl();
            ctl.flush_completed = ctl.flush_requested.max(ctl.flush_completed);
            shared.done_cv.notify_all();
            return maintainer;
        }
    }
}

/// The ops cap for the next round: the policy's bound — except when the
/// backlog has crossed the session's re-mine break-even (§4.5 applied
/// online). Then the whole backlog travels in one round, so the
/// session's update policy routes it to a full re-mine instead of
/// grinding through FUP chunks that a single Apriori pass would beat.
///
/// With [`CommitPolicy::adaptive_round_target`] set, the bound is
/// derived from the latency ring's most recent sample instead of the
/// fixed knob (which stays in force as a ceiling) — see
/// [`derive_adaptive_cap`].
fn round_cap(maintainer: &Maintainer, shared: &Shared, pending: u64) -> Option<u64> {
    if pending > 0
        && maintainer
            .policy()
            .should_remine(pending, maintainer.len() as u64)
    {
        return None;
    }
    let fixed = shared.policy.max_ops_per_round;
    let Some(target) = shared.policy.adaptive_round_target else {
        return fixed;
    };
    let observed = shared
        .latencies
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .back()
        .copied()
        .unwrap_or(0);
    let last_ops = shared.metrics.last_round_ops.load(Ordering::Relaxed);
    derive_adaptive_cap(target.as_micros() as u64, last_ops, observed, fixed)
}

/// Adaptive round sizing: scale the last round's op count by
/// `target / observed` latency — a one-step proportional controller
/// under the (locally accurate) model that commit latency grows with
/// round size. Rounds that ran under target may grow, rounds that ran
/// over must shrink; the fixed knob, when set, remains a hard ceiling
/// and is the fallback while there is no observation yet. The derived
/// cap never falls below one op, so progress is always possible.
fn derive_adaptive_cap(
    target_micros: u64,
    last_ops: u64,
    observed_micros: u64,
    fixed: Option<u64>,
) -> Option<u64> {
    if last_ops == 0 || observed_micros == 0 {
        return fixed;
    }
    let scaled = (last_ops as u128 * target_micros as u128) / observed_micros as u128;
    let derived = scaled.clamp(1, u64::MAX as u128) as u64;
    Some(fixed.map_or(derived, |f| derived.min(f)))
}

/// Drains everything staged in bounded rounds, stopping early if a round
/// fails (the failure outcome covers every ticket issued so far).
///
/// The flush ticket is re-read immediately before the final round. That
/// read is what makes covering sound: work staged before any covered
/// `flush` call happens-before the ticket's issuance, which
/// happens-before our read, which precedes the pending read that sized
/// the final round — so that work is either already committed by an
/// earlier chunk or inside the final round's arrival-order prefix.
fn drain_backlog(maintainer: &mut Maintainer, shared: &Shared) {
    loop {
        let ticket = shared.lock_ctl().flush_requested;
        let (pend_i, pend_d) = shared.stage_handle().pending_ops();
        let pending = pend_i + pend_d;
        let cap = round_cap(maintainer, shared, pending);
        let is_final = cap.is_none_or(|c| pending <= c);
        let hint = cap.map_or(pending, |c| pending.min(c));
        let cover = if is_final { Some(ticket) } else { None };
        if !run_round(maintainer, shared, cap, cover, hint) || is_final {
            return;
        }
    }
}

/// One bounded maintenance round: drain up to `cap` ops in arrival
/// order and apply them as one FUP/FUP2/re-mine round (inside
/// [`Maintainer::commit_bounded`]), publish
/// the snapshot, update counters. With `cover = Some(ticket)` the
/// round's outcome completes flush tickets up to `ticket`; an
/// intermediate chunk passes `None` and publishes an outcome only on
/// failure (covering every ticket issued so far, which the
/// `rounds_failed` fence makes safe). Returns whether the round
/// succeeded.
fn run_round(
    maintainer: &mut Maintainer,
    shared: &Shared,
    cap: Option<u64>,
    cover: Option<u64>,
    pending_hint: u64,
) -> bool {
    let before_len = maintainer.len() as u64;
    let start = Instant::now();
    let outcome = maintainer.commit_bounded(cap);
    let micros = start.elapsed().as_micros() as u64;
    let m = &shared.metrics;
    let result = match outcome {
        Ok(report) => {
            shared.cell.store(maintainer.state_arc());
            shared
                .live_len
                .store(maintainer.len() as u64, Ordering::Relaxed);
            let inserted = report.inserted_tids.len() as u64;
            let deleted = (before_len + inserted).saturating_sub(report.num_transactions);
            let round_ops = inserted + deleted;
            m.committed_rounds.fetch_add(1, Ordering::Relaxed);
            m.committed_inserts.fetch_add(inserted, Ordering::Relaxed);
            m.committed_deletes.fetch_add(deleted, Ordering::Relaxed);
            m.last_round_ops.store(round_ops, Ordering::Relaxed);
            m.max_round_ops.fetch_max(round_ops, Ordering::Relaxed);
            m.last_commit_micros.store(micros, Ordering::Relaxed);
            m.total_commit_micros.fetch_add(micros, Ordering::Relaxed);
            let index = maintainer.index_stats();
            m.index_builds.store(index.builds, Ordering::Relaxed);
            m.index_extends.store(index.extends, Ordering::Relaxed);
            {
                let mut ring = shared
                    .latencies
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                if ring.len() == LATENCY_RING {
                    ring.pop_front();
                }
                ring.push_back(micros);
            }
            *shared
                .shard_gauges
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = maintainer.shard_health();
            Ok(report)
        }
        Err(e) => {
            // The drained batch is consumed either way; account it as
            // dropped (`pending_hint` was read just before the drain, so
            // it can undercount by batches that raced in).
            m.dropped_rounds.fetch_add(1, Ordering::Relaxed);
            m.dropped_ops.fetch_add(pending_hint, Ordering::Relaxed);
            // If the round failed because durable storage is failing,
            // route the service into the matching health state so
            // producers stop feeding rounds that cannot be made durable
            // and the heal probe starts.
            match maintainer.durability_state() {
                Some(LogState::Degraded) => shared.on_degraded(),
                Some(LogState::Poisoned) => shared.on_failed(),
                _ => {}
            }
            Err(e)
        }
    };
    let ok = result.is_ok();
    if ok && cover.is_none() {
        // An intermediate chunk: the snapshot is published, but the
        // backlog is not drained yet — no flush ticket completes.
        return true;
    }
    let mut ctl = shared.lock_ctl();
    if let Err(e) = &result {
        ctl.rounds_failed += 1;
        ctl.last_round_error = Some(e.clone());
    }
    let covered = cover.unwrap_or(ctl.flush_requested);
    ctl.outcomes.push((covered, result));
    ctl.flush_completed = covered.max(ctl.flush_completed);
    ctl.prune_outcomes();
    shared.done_cv.notify_all();
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::UpdatePolicy;
    use fup_mining::{MinConfidence, MinSupport};
    use fup_tidb::{FlakyStorage, MemStorage, OpClass, Tid, Transaction};

    fn tx(items: &[u32]) -> Transaction {
        Transaction::from_items(items.iter().copied())
    }

    fn durable_session(storage: Arc<dyn DurableStorage>) -> Maintainer {
        Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .build_durable(
                vec![
                    tx(&[1, 2, 3]),
                    tx(&[1, 2]),
                    tx(&[2, 3]),
                    tx(&[1, 3]),
                    tx(&[4, 5]),
                ],
                storage,
            )
            .unwrap()
    }

    /// Spin until `probe` passes or the deadline expires.
    fn wait_for(what: &str, mut probe: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !probe() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    fn session() -> Maintainer {
        Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .build(vec![
                tx(&[1, 2, 3]),
                tx(&[1, 2]),
                tx(&[2, 3]),
                tx(&[1, 3]),
                tx(&[4, 5]),
            ])
            .unwrap()
    }

    #[test]
    fn policy_validation_rejects_degenerate_triggers() {
        assert_eq!(
            CommitPolicy::default().every_ops(0).validate().unwrap_err(),
            ServiceError::ZeroPendingTrigger
        );
        for bad in [-1.0, 0.0, f64::NAN, f64::INFINITY] {
            let err = CommitPolicy::default()
                .at_increment_ratio(bad)
                .validate()
                .unwrap_err();
            assert!(
                matches!(err, ServiceError::InvalidIncrementRatio(_)),
                "{bad}: {err:?}"
            );
        }
        assert_eq!(
            CommitPolicy::default()
                .with_poll_interval(Duration::ZERO)
                .validate()
                .unwrap_err(),
            ServiceError::ZeroPollInterval
        );
        assert_eq!(
            CommitPolicy::manual()
                .ops_per_round(0)
                .validate()
                .unwrap_err(),
            ServiceError::ZeroRoundCap
        );
        assert_eq!(
            CommitPolicy::manual()
                .staging_capacity(0)
                .validate()
                .unwrap_err(),
            ServiceError::ZeroStagingCapacity
        );
        assert_eq!(
            CommitPolicy::manual()
                .adaptive_rounds(Duration::ZERO)
                .validate()
                .unwrap_err(),
            ServiceError::ZeroAdaptiveTarget
        );
        CommitPolicy::manual()
            .adaptive_rounds(Duration::from_millis(5))
            .validate()
            .unwrap();
        CommitPolicy::manual().validate().unwrap();
        CommitPolicy::default().validate().unwrap();
        CommitPolicy::manual()
            .ops_per_round(512)
            .staging_capacity(4096)
            .validate()
            .unwrap();
        // launch() refuses invalid policies before spawning anything.
        let err =
            MaintainerService::launch(session(), CommitPolicy::default().every_ops(0)).unwrap_err();
        assert_eq!(err, ServiceError::ZeroPendingTrigger);
    }

    #[test]
    fn adaptive_cap_arithmetic() {
        // No observation yet → the fixed knob is the answer either way.
        assert_eq!(derive_adaptive_cap(1_000, 0, 0, None), None);
        assert_eq!(derive_adaptive_cap(1_000, 0, 500, Some(64)), Some(64));
        assert_eq!(derive_adaptive_cap(1_000, 10, 0, Some(64)), Some(64));
        // Under target → rounds may grow proportionally.
        assert_eq!(derive_adaptive_cap(1_000, 100, 500, None), Some(200));
        // Over target → rounds shrink, but never below one op.
        assert_eq!(derive_adaptive_cap(1_000, 100, 4_000, None), Some(25));
        assert_eq!(derive_adaptive_cap(1, 2, 1_000_000, None), Some(1));
        // The fixed knob stays a hard ceiling on growth.
        assert_eq!(derive_adaptive_cap(1_000, 100, 500, Some(150)), Some(150));
        assert_eq!(derive_adaptive_cap(1_000, 100, 4_000, Some(150)), Some(25));
        // Exactly on target holds the size steady.
        assert_eq!(derive_adaptive_cap(1_000, 100, 1_000, None), Some(100));
    }

    #[test]
    fn adaptive_rounds_drain_backlogs_end_to_end() {
        let policy = CommitPolicy::manual()
            .adaptive_rounds(Duration::from_millis(50))
            .ops_per_round(4);
        let service = MaintainerService::launch(session(), policy).unwrap();
        for i in 0..10u32 {
            service
                .stage(UpdateBatch::insert_only(vec![tx(&[i % 5, i % 3 + 4])]))
                .unwrap();
        }
        let report = service.flush().unwrap();
        assert_eq!(report.num_transactions, 15);
        let metrics = service.metrics();
        assert!(metrics.committed_rounds >= 1);
        assert!(metrics.max_round_ops <= 4, "{metrics:?}");
        assert_eq!(metrics.committed_inserts, 10);
        let (maintainer, _) = service.shutdown();
        maintainer.verify_consistency().unwrap();
    }

    #[test]
    fn trigger_arithmetic() {
        let p = CommitPolicy::manual();
        assert!(!p.triggered(u64::MAX, 0));
        let p = CommitPolicy::manual().every_ops(10);
        assert!(!p.triggered(9, 100));
        assert!(p.triggered(10, 100));
        assert!(!p.triggered(0, 0));
        let p = CommitPolicy::manual().at_increment_ratio(0.5);
        assert!(!p.triggered(49, 100));
        assert!(p.triggered(50, 100));
        assert!(p.triggered(1, 0), "any pending on an empty store triggers");
    }

    #[test]
    fn manual_service_flushes_and_hands_session_back() {
        let service = MaintainerService::launch(session(), CommitPolicy::manual()).unwrap();
        assert_eq!(service.snapshot().version(), 0);
        service
            .stage(UpdateBatch::insert_only(vec![tx(&[4, 5]), tx(&[4, 5])]))
            .unwrap();
        service
            .stage(UpdateBatch::insert_only(vec![tx(&[4, 5, 1])]))
            .unwrap();
        assert_eq!(service.pending_ops(), (3, 0));
        // Nothing committed yet: the snapshot is still version 0.
        assert_eq!(service.snapshot().version(), 0);

        let report = service.flush().unwrap();
        assert_eq!(report.algorithm, "fup");
        assert_eq!(report.num_transactions, 8);
        assert_eq!(service.snapshot().version(), 1);
        assert_eq!(service.pending_ops(), (0, 0));

        let (maintainer, metrics) = service.shutdown();
        assert_eq!(maintainer.len(), 8);
        maintainer.verify_consistency().unwrap();
        assert_eq!(metrics.staged_batches, 2);
        assert_eq!(metrics.staged_inserts, 3);
        assert_eq!(metrics.committed_rounds, 1);
        assert_eq!(metrics.committed_inserts, 3);
        assert_eq!(metrics.dropped_rounds, 0);
        assert!(metrics.last_commit_micros > 0);
        assert_eq!(metrics.last_round_ops, 3);
        assert_eq!(metrics.max_round_ops, 3);
        assert_eq!(metrics.max_backlog_ops, 3);
        assert_eq!(metrics.backlog_ops, 0);
    }

    #[test]
    fn pending_trigger_commits_in_background() {
        let service = MaintainerService::launch(
            session(),
            CommitPolicy::manual()
                .every_ops(4)
                .with_poll_interval(Duration::from_millis(1)),
        )
        .unwrap();
        for _ in 0..4 {
            service
                .stage(UpdateBatch::insert_only(vec![tx(&[4, 5])]))
                .unwrap();
        }
        // The committer picks the work up on its own; wait for it.
        let deadline = Instant::now() + Duration::from_secs(10);
        while service.metrics().committed_rounds == 0 {
            assert!(Instant::now() < deadline, "trigger never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(service.snapshot().version(), 1);
        let (maintainer, metrics) = service.shutdown();
        assert_eq!(metrics.committed_inserts, 4);
        maintainer.verify_consistency().unwrap();
    }

    #[test]
    fn shutdown_drains_staged_work() {
        let service = MaintainerService::launch(session(), CommitPolicy::manual()).unwrap();
        service
            .stage(UpdateBatch::insert_only(vec![tx(&[7, 8]), tx(&[7, 8])]))
            .unwrap();
        let (maintainer, metrics) = service.shutdown();
        assert_eq!(maintainer.len(), 7, "shutdown must drain staged batches");
        assert_eq!(metrics.committed_rounds, 1);
        maintainer.verify_consistency().unwrap();
    }

    #[test]
    fn rejected_batches_do_not_poison_the_round() {
        let service = MaintainerService::launch(session(), CommitPolicy::manual()).unwrap();
        let err = service
            .stage(UpdateBatch::delete_only(vec![Tid(999)]))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Stage(Error::Store(_))));
        service
            .stage(UpdateBatch::insert_only(vec![tx(&[1, 2])]))
            .unwrap();
        let report = service.flush().unwrap();
        assert_eq!(report.num_transactions, 6);
        let (_m, metrics) = service.shutdown();
        assert_eq!(metrics.rejected_batches, 1);
        assert_eq!(metrics.staged_batches, 1);
        assert_eq!(metrics.backpressure_rejections, 0);
    }

    #[test]
    fn deletes_route_through_the_service() {
        let m = session();
        let victim = m.store().iter().next().unwrap().0;
        let service = MaintainerService::launch(m, CommitPolicy::manual()).unwrap();
        service
            .stage(UpdateBatch {
                inserts: vec![tx(&[4, 5])],
                deletes: vec![victim],
            })
            .unwrap();
        // The same tid cannot be claimed twice while staged.
        let err = service
            .stage(UpdateBatch::delete_only(vec![victim]))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Stage(Error::Store(_))));
        let report = service.flush().unwrap();
        assert_eq!(report.algorithm, "fup2");
        assert_eq!(report.num_transactions, 5);
        let (maintainer, metrics) = service.shutdown();
        assert_eq!(metrics.committed_deletes, 1);
        maintainer.verify_consistency().unwrap();
    }

    #[test]
    fn stage_and_flush_fail_after_shutdown_begins() {
        let service = MaintainerService::launch(session(), CommitPolicy::manual()).unwrap();
        service.shared.stopping.store(true, Ordering::Relaxed);
        let err = service
            .stage(UpdateBatch::insert_only(vec![tx(&[1])]))
            .unwrap_err();
        assert_eq!(err, ServiceError::ShutDown);
        service.shared.ctl.lock().unwrap().stop = true;
        assert_eq!(service.flush().unwrap_err(), ServiceError::ShutDown);
    }

    #[test]
    fn a_flush_drains_an_oversized_backlog_in_bounded_rounds() {
        let service =
            MaintainerService::launch(session(), CommitPolicy::manual().ops_per_round(2)).unwrap();
        for _ in 0..7 {
            service
                .stage(UpdateBatch::insert_only(vec![tx(&[4, 5])]))
                .unwrap();
        }
        let report = service.flush().unwrap();
        assert_eq!(report.num_transactions, 12);
        assert_eq!(service.pending_ops(), (0, 0));
        let m = service.metrics();
        assert_eq!(m.committed_rounds, 4, "7 ops in rounds of ≤2 is 4 rounds");
        assert!(m.max_round_ops <= 2, "no round may exceed the cap");
        assert_eq!(m.committed_inserts, 7);
        assert_eq!(service.round_latencies().len(), 4);
        // Every intermediate chunk published: 4 rounds, 4 versions.
        assert_eq!(service.snapshot().version(), 4);
        let (maintainer, _) = service.shutdown();
        assert_eq!(maintainer.len(), 12);
        maintainer.verify_consistency().unwrap();
    }

    #[test]
    fn backlog_and_staleness_gauges_track_staged_work() {
        let service =
            MaintainerService::launch(session(), CommitPolicy::manual().ops_per_round(2)).unwrap();
        for _ in 0..5 {
            service
                .stage(UpdateBatch::insert_only(vec![tx(&[4, 5])]))
                .unwrap();
        }
        let m = service.metrics();
        assert_eq!(m.backlog_ops, 5);
        assert_eq!(m.snapshot_staleness_rounds, 3, "ceil(5 / 2) rounds behind");
        assert_eq!(m.max_backlog_ops, 5);
        service.flush().unwrap();
        let m = service.metrics();
        assert_eq!(m.backlog_ops, 0);
        assert_eq!(m.snapshot_staleness_rounds, 0);
        assert_eq!(m.max_backlog_ops, 5, "the high-water mark survives");
        let (maintainer, _) = service.shutdown();
        maintainer.verify_consistency().unwrap();
    }

    #[test]
    fn an_over_breakeven_backlog_is_routed_to_one_remine_round() {
        // 7 staged ops over 5 live transactions is a 1.4 increment ratio
        // — past this session's 0.5 re-mine break-even, so the committer
        // must hand the whole backlog to one round (ignoring the 2-op
        // cap) and let the update policy re-mine, instead of grinding
        // through four FUP chunks.
        let maintainer = Maintainer::builder()
            .min_support(MinSupport::percent(40))
            .min_confidence(MinConfidence::percent(60))
            .policy(UpdatePolicy::RemineOverRatio(0.5))
            .build(vec![
                tx(&[1, 2, 3]),
                tx(&[1, 2]),
                tx(&[2, 3]),
                tx(&[1, 3]),
                tx(&[4, 5]),
            ])
            .unwrap();
        let service =
            MaintainerService::launch(maintainer, CommitPolicy::manual().ops_per_round(2)).unwrap();
        for _ in 0..7 {
            service
                .stage(UpdateBatch::insert_only(vec![tx(&[4, 5])]))
                .unwrap();
        }
        let report = service.flush().unwrap();
        assert_eq!(report.algorithm, "apriori-remine");
        assert_eq!(report.num_transactions, 12);
        let m = service.metrics();
        assert_eq!(m.committed_rounds, 1, "the backlog travelled as one round");
        assert_eq!(m.max_round_ops, 7, "a re-mine round may exceed the cap");
        let (maintainer, _) = service.shutdown();
        maintainer.verify_consistency().unwrap();
    }

    #[test]
    fn capacity_gate_rejects_and_times_out_with_typed_errors() {
        let service =
            MaintainerService::launch(session(), CommitPolicy::manual().staging_capacity(3))
                .unwrap();
        service
            .stage(UpdateBatch::insert_only(vec![
                tx(&[4, 5]),
                tx(&[4, 5]),
                tx(&[4, 5]),
            ]))
            .unwrap();
        let err = service
            .try_stage(UpdateBatch::insert_only(vec![tx(&[4, 5])]))
            .unwrap_err();
        assert_eq!(
            err,
            ServiceError::WouldBlock {
                pending: 3,
                capacity: 3
            }
        );
        let err = service
            .stage_deadline(
                UpdateBatch::insert_only(vec![tx(&[4, 5])]),
                Instant::now() + Duration::from_millis(10),
            )
            .unwrap_err();
        assert_eq!(
            err,
            ServiceError::StageTimeout {
                pending: 3,
                capacity: 3
            }
        );
        assert_eq!(service.metrics().backpressure_rejections, 2);
        assert_eq!(service.metrics().rejected_batches, 0);
        // A flush frees the gate and the same batch is admitted.
        service.flush().unwrap();
        service
            .try_stage(UpdateBatch::insert_only(vec![tx(&[4, 5])]))
            .unwrap();
        let (maintainer, _) = service.shutdown();
        assert_eq!(maintainer.len(), 9);
        maintainer.verify_consistency().unwrap();
    }

    #[test]
    fn a_blocking_stage_rides_out_a_full_gate() {
        // every_ops(2) keeps the committer draining, so a Block-mode
        // producer at a full 2-op gate eventually gets its space.
        let service = MaintainerService::launch(
            session(),
            CommitPolicy::manual()
                .every_ops(2)
                .staging_capacity(2)
                .with_poll_interval(Duration::from_millis(1)),
        )
        .unwrap();
        for _ in 0..6 {
            service
                .stage(UpdateBatch::insert_only(vec![tx(&[4, 5]), tx(&[6, 7])]))
                .unwrap();
        }
        service.flush().unwrap();
        let (maintainer, metrics) = service.shutdown();
        assert_eq!(maintainer.len(), 17);
        assert_eq!(metrics.staged_inserts, 12);
        maintainer.verify_consistency().unwrap();
    }

    #[test]
    fn shutdown_fails_producers_parked_on_a_full_gate() {
        let service = Arc::new(
            MaintainerService::launch(session(), CommitPolicy::manual().staging_capacity(2))
                .unwrap(),
        );
        service
            .stage(UpdateBatch::insert_only(vec![tx(&[4, 5]), tx(&[6, 7])]))
            .unwrap();
        let parked = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || service.stage(UpdateBatch::insert_only(vec![tx(&[8, 9])])))
        };
        // Give the producer time to park on the full gate, then shut
        // down: the sleeper must fail typed instead of deadlocking the
        // shutdown drain.
        std::thread::sleep(Duration::from_millis(50));
        let shutdown = std::thread::spawn(move || {
            // The parked thread still holds its Arc clone; spin until it
            // errors out and drops it, as shutdown() needs ownership.
            let mut service = service;
            loop {
                match Arc::try_unwrap(service) {
                    Ok(service) => return service.shutdown(),
                    Err(still_shared) => {
                        // Begin shutdown through the shared handle so the
                        // sleeper actually wakes: stopping + closed gate.
                        still_shared.shared.stopping.store(true, Ordering::SeqCst);
                        still_shared
                            .shared
                            .stage_handle()
                            .staging_area()
                            .close_admissions();
                        service = still_shared;
                        std::thread::yield_now();
                    }
                }
            }
        });
        let err = parked.join().unwrap().unwrap_err();
        assert_eq!(err, ServiceError::ShutDown);
        let (maintainer, _) = shutdown.join().unwrap();
        assert_eq!(maintainer.len(), 7, "the accepted batch still commits");
        maintainer.verify_consistency().unwrap();
    }

    #[test]
    fn killing_the_committer_mid_burst_degrades_typed_not_hung() {
        let service = Arc::new(
            MaintainerService::launch(
                session(),
                CommitPolicy::manual()
                    .staging_capacity(2)
                    .with_poll_interval(Duration::from_millis(1)),
            )
            .unwrap(),
        );
        // Fill the gate, then park a Block-mode producer on it.
        service
            .stage(UpdateBatch::insert_only(vec![tx(&[4, 5]), tx(&[6, 7])]))
            .unwrap();
        let parked = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || service.stage(UpdateBatch::insert_only(vec![tx(&[8, 9])])))
        };
        std::thread::sleep(Duration::from_millis(20));
        // Kill the committer mid-burst. Its next wakeup (the 1 ms poll)
        // panics; this session has no durable storage, so the supervisor
        // cannot rebuild it — it must fail the parked producer, refuse
        // new work, and keep snapshots serving.
        service.debug_kill_committer();
        let err = parked.join().unwrap().unwrap_err();
        assert_eq!(err, ServiceError::CommitterGone);
        let err = service
            .try_stage(UpdateBatch::insert_only(vec![tx(&[1, 2])]))
            .unwrap_err();
        assert_eq!(err, ServiceError::CommitterGone);
        let err = service.flush().unwrap_err();
        assert_eq!(err, ServiceError::CommitterGone);
        assert_eq!(service.snapshot().version(), 0);
        assert_eq!(service.snapshot().num_transactions(), 5);
        // Dropping the service discards the dead pipeline quietly.
        drop(Arc::into_inner(service).expect("unique"));
    }

    #[test]
    fn flush_timeout_abandons_the_wait_not_the_work() {
        let service = MaintainerService::launch(session(), CommitPolicy::manual()).unwrap();
        service
            .stage(UpdateBatch::insert_only(vec![tx(&[4, 5])]))
            .unwrap();
        // A zero timeout expires before the committer can possibly cover
        // the ticket (the control lock is held from issuance to the
        // deadline check), making the timeout path deterministic.
        let err = service.flush_timeout(Duration::ZERO).unwrap_err();
        assert_eq!(err, ServiceError::FlushTimeout);
        // The staged work was not lost: a patient flush still commits it
        // (possibly via the round the abandoned ticket provoked).
        let report = service.flush().unwrap();
        assert_eq!(report.num_transactions, 6);
        let (maintainer, _) = service.shutdown();
        assert_eq!(maintainer.len(), 6);
        maintainer.verify_consistency().unwrap();
        // And a generous timeout behaves like a plain flush.
        let service = MaintainerService::launch(session(), CommitPolicy::manual()).unwrap();
        service
            .stage(UpdateBatch::insert_only(vec![tx(&[4, 5])]))
            .unwrap();
        let report = service.flush_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(report.num_transactions, 6);
        drop(service);
    }

    #[test]
    fn snapshot_cell_survives_concurrent_readers_and_stores() {
        // Stress the epoch protocol directly: 6 reader threads hammer
        // load() while the writer publishes new states as fast as it can.
        let m = session();
        let cell = SnapshotCell::new(m.state_arc());
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..6 {
                let (cell, stop) = (&cell, &stop);
                scope.spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let s = RuleSnapshot::from_state(cell.load());
                        // Versions move forward and states stay readable.
                        assert!(s.version() >= last);
                        assert!(s.num_transactions() >= 5);
                        last = s.version();
                    }
                });
            }
            let mut writer = session();
            for _ in 0..200 {
                writer
                    .apply(UpdateBatch::insert_only(vec![tx(&[6, 7])]))
                    .unwrap();
                cell.store(writer.state_arc());
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(RuleSnapshot::from_state(cell.load()).version(), 200);
    }

    #[test]
    fn flush_outcomes_attribute_by_first_covering_round() {
        // A waiter must take the first round covering its ticket, so a
        // later round's failure is never misattributed to it (and a
        // later success never masks its own round's failure).
        let mut ctl = Ctl::default();
        let report = |v: u64| {
            let mut m = session();
            let mut r = m
                .apply(UpdateBatch::insert_only(vec![tx(&[6, 7])]))
                .unwrap();
            r.version = v;
            r
        };
        ctl.waiting.extend([2u64, 3]);
        ctl.outcomes.push((1, Ok(report(1)))); // covers ticket 1 only
        ctl.outcomes.push((2, Err(Error::DeletionsDisabled))); // covers 2
        ctl.outcomes.push((3, Ok(report(3)))); // covers 3
                                               // Ticket 2 takes the failing round 2, not the later success.
        let (covered, outcome) = ctl
            .outcomes
            .iter()
            .find(|&&(c, _)| c >= 2)
            .expect("covered");
        assert_eq!(*covered, 2);
        assert!(outcome.is_err());
        // Ticket 3 takes round 3's success.
        let (_, outcome) = ctl
            .outcomes
            .iter()
            .find(|&&(c, _)| c >= 3)
            .expect("covered");
        assert_eq!(outcome.as_ref().unwrap().version, 3);
        // Pruning keeps everything the smallest waiting ticket may need…
        ctl.prune_outcomes();
        assert_eq!(ctl.outcomes.len(), 2);
        assert_eq!(ctl.outcomes[0].0, 2);
        // …and clears the history once nobody waits.
        ctl.waiting.clear();
        ctl.prune_outcomes();
        assert!(ctl.outcomes.is_empty());
    }

    #[test]
    fn a_panicked_committer_is_restarted_on_a_durable_session() {
        let mem = Arc::new(MemStorage::new());
        let service = MaintainerService::launch(
            durable_session(mem),
            CommitPolicy::manual().with_poll_interval(Duration::from_millis(1)),
        )
        .unwrap();
        service
            .stage(UpdateBatch::insert_only(vec![tx(&[6, 7])]))
            .unwrap();
        service.flush().unwrap();

        service.debug_kill_committer();
        wait_for("the supervised restart", || {
            let h = service.health();
            h.committer_restarts == 1 && h.state == HealthState::Healthy
        });

        // The restarted committer accepts work again, and the recovery
        // path preserved everything the dead incarnation committed.
        service
            .stage(UpdateBatch::insert_only(vec![tx(&[6, 7])]))
            .unwrap();
        let report = service.flush().unwrap();
        assert_eq!(report.num_transactions, 7);
        let (maintainer, metrics) = service.shutdown();
        assert_eq!(metrics.committer_restarts, 1);
        assert_eq!(maintainer.len(), 7);
        maintainer.verify_consistency().unwrap();
    }

    #[test]
    fn committer_restarts_are_bounded_by_the_policy_budget() {
        let mem = Arc::new(MemStorage::new());
        let service = MaintainerService::launch(
            durable_session(mem),
            CommitPolicy::manual()
                .with_poll_interval(Duration::from_millis(1))
                .committer_restarts(1),
        )
        .unwrap();
        // First panic: within budget, restarted.
        service.debug_kill_committer();
        wait_for("the first restart", || {
            let h = service.health();
            h.committer_restarts == 1 && h.state == HealthState::Healthy
        });
        // Second panic: past the budget — terminal.
        service.debug_kill_committer();
        wait_for("terminal failure", || {
            service.health().state == HealthState::Failed
        });
        let err = service
            .try_stage(UpdateBatch::insert_only(vec![tx(&[1, 2])]))
            .unwrap_err();
        assert_eq!(err, ServiceError::CommitterGone);
        assert_eq!(service.flush().unwrap_err(), ServiceError::CommitterGone);
        assert_eq!(service.snapshot().num_transactions(), 5);
        assert_eq!(service.metrics().committer_restarts, 1);
        // Dropping discards the dead pipeline without re-raising.
        drop(service);
    }

    #[test]
    fn exhausted_storage_retries_degrade_the_service_with_typed_errors() {
        let mem = Arc::new(MemStorage::new());
        let flaky = Arc::new(FlakyStorage::new(mem));
        let service = MaintainerService::launch(
            durable_session(flaky.clone()),
            CommitPolicy::manual().with_poll_interval(Duration::from_millis(1)),
        )
        .unwrap();
        // More faults than any retry budget: staging degrades the
        // service and the heal probes keep failing.
        flaky.fail_next(OpClass::Append, 1_000);
        let err = service
            .stage(UpdateBatch::insert_only(vec![tx(&[6, 7])]))
            .unwrap_err();
        assert_eq!(err, ServiceError::Degraded);
        assert_ne!(service.health().state, HealthState::Healthy);
        assert_eq!(service.flush().unwrap_err(), ServiceError::Degraded);
        // Reads keep serving throughout.
        assert_eq!(service.snapshot().num_transactions(), 5);
        let metrics = service.metrics();
        assert!(metrics.transient_retries > 0, "{metrics:?}");
        // Shutdown returns even while degraded (the final drain is
        // skipped; nothing was staged).
        let (maintainer, _metrics) = service.shutdown();
        assert_eq!(maintainer.len(), 5);
    }

    #[test]
    fn a_degraded_service_heals_and_reopens_admissions() {
        let mem = Arc::new(MemStorage::new());
        let flaky = Arc::new(FlakyStorage::new(mem));
        let service = MaintainerService::launch(
            durable_session(flaky.clone()),
            CommitPolicy::manual().with_poll_interval(Duration::from_millis(1)),
        )
        .unwrap();
        // Exactly the stage path's retry budget (default 4 attempts):
        // the stage exhausts it and degrades, and the script runs dry so
        // the first heal probe succeeds.
        flaky.fail_next(OpClass::Append, 4);
        let err = service
            .stage(UpdateBatch::insert_only(vec![tx(&[6, 7])]))
            .unwrap_err();
        assert_eq!(err, ServiceError::Degraded);
        wait_for("the heal probe", || {
            service.health().state == HealthState::Healthy
        });
        // Healed: the same batch is admitted and committed durably.
        service
            .stage(UpdateBatch::insert_only(vec![tx(&[6, 7])]))
            .unwrap();
        let report = service.flush().unwrap();
        assert_eq!(report.num_transactions, 6);
        let (maintainer, metrics) = service.shutdown();
        assert_eq!(metrics.committer_restarts, 0);
        assert!(metrics.transient_retries >= 3, "{metrics:?}");
        assert_eq!(maintainer.len(), 6);
        maintainer.verify_consistency().unwrap();
    }

    #[test]
    fn health_report_renders_stable_text_and_json() {
        let service = MaintainerService::launch(session(), CommitPolicy::manual()).unwrap();
        service
            .stage(UpdateBatch::insert_only(vec![tx(&[4, 5])]))
            .unwrap();
        service.flush().unwrap();

        let report = service.health_report();
        assert_eq!(report.health, service.health());

        let text = report.to_text();
        assert!(text.starts_with("health.state: healthy\n"), "{text}");
        assert!(text.contains("health.committer_restarts: 0\n"), "{text}");
        assert!(text.contains("metrics.staged_batches: 1\n"), "{text}");
        assert!(text.contains("metrics.committed_rounds: 1\n"), "{text}");
        assert!(text.contains("metrics.backlog_ops: 0\n"), "{text}");
        assert!(text.contains("shards.0.ops: 1\n"), "{text}");
        assert!(text.contains("shards.0.backlog: 0\n"), "{text}");
        assert!(text.contains("shards.0.state: up\n"), "{text}");
        assert_eq!(text, report.to_string(), "Display is the text form");
        // Every line is `key: value` over the three fixed sections.
        for line in text.lines() {
            let (key, value) = line.split_once(": ").expect("key: value lines");
            assert!(
                key.starts_with("health.")
                    || key.starts_with("metrics.")
                    || key.starts_with("shards."),
                "{line}"
            );
            if key != "health.state" && !key.ends_with(".state") {
                value.parse::<u64>().expect("integer values");
            }
        }

        let json = report.to_json();
        assert!(
            json.starts_with("{\"health\":{\"state\":\"healthy\""),
            "{json}"
        );
        assert!(json.contains("\"metrics\":{\"staged_batches\":1"), "{json}");
        assert!(json.contains("\"committed_rounds\":1"), "{json}");
        assert!(
            json.contains("\"shards\":[{\"shard\":0,\"ops\":1,\"backlog\":0,\"state\":\"up\"}]"),
            "{json}"
        );
        assert!(json.ends_with("]}"), "{json}");
        // Balanced braces and no stray quotes — a scraper's JSON parser
        // would accept it.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('"').count() % 2, 0);
    }

    #[test]
    fn on_health_change_fires_on_real_transitions_only() {
        let mem = Arc::new(MemStorage::new());
        let flaky = Arc::new(FlakyStorage::new(mem));
        let service = MaintainerService::launch(
            durable_session(flaky.clone()),
            CommitPolicy::manual().with_poll_interval(Duration::from_millis(1)),
        )
        .unwrap();
        let seen: Arc<Mutex<Vec<(HealthState, HealthState)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        service.on_health_change(move |from, to| sink.lock().unwrap().push((from, to)));

        // Degrade (stage exhausts the retry budget), then heal. The
        // degrade fires on this producer thread and the heal on the
        // committer's probe, so only the *set* of transitions is
        // deterministic here, not their push order.
        flaky.fail_next(OpClass::Append, 4);
        let err = service
            .stage(UpdateBatch::insert_only(vec![tx(&[6, 7])]))
            .unwrap_err();
        assert_eq!(err, ServiceError::Degraded);
        wait_for("the heal probe", || {
            service.health().state == HealthState::Healthy
        });
        wait_for("both degrade transitions", || {
            seen.lock().unwrap().len() == 2
        });
        {
            let mut transitions = seen.lock().unwrap();
            transitions.sort();
            let mut expected = vec![
                (HealthState::Healthy, HealthState::Degraded),
                (HealthState::Degraded, HealthState::Healthy),
            ];
            expected.sort();
            assert_eq!(
                *transitions, expected,
                "degrade and heal each fired exactly once"
            );
            transitions.clear();
        }

        // A supervised restart: both transitions fire on the supervisor
        // thread, so their order *is* deterministic.
        service.debug_kill_committer();
        wait_for("the restart transitions", || {
            seen.lock().unwrap().len() == 2
        });
        assert_eq!(
            *seen.lock().unwrap(),
            vec![
                (HealthState::Healthy, HealthState::Restarting),
                (HealthState::Restarting, HealthState::Healthy),
            ],
            "no no-op re-entries around the restart"
        );
        assert_eq!(service.health().committer_restarts, 1);
    }

    #[test]
    fn stage_with_retry_retries_backpressure_then_sheds() {
        let service =
            MaintainerService::launch(session(), CommitPolicy::manual().staging_capacity(2))
                .unwrap();
        service
            .stage(UpdateBatch::insert_only(vec![tx(&[4, 5]), tx(&[6, 7])]))
            .unwrap();
        let retry = RetryPolicy::attempts(3).backoff(Duration::ZERO, Duration::ZERO);
        let err = service
            .stage_with_retry(UpdateBatch::insert_only(vec![tx(&[8, 9])]), retry)
            .unwrap_err();
        match err {
            ServiceError::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert!(matches!(*last, ServiceError::WouldBlock { .. }), "{last}");
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        // A flush frees the gate and the same policy then succeeds.
        service.flush().unwrap();
        service
            .stage_with_retry(UpdateBatch::insert_only(vec![tx(&[8, 9])]), retry)
            .unwrap();
        // Non-retryable errors surface immediately, unwrapped.
        let err = service
            .stage_with_retry(UpdateBatch::delete_only(vec![Tid(999)]), retry)
            .unwrap_err();
        assert!(matches!(err, ServiceError::Stage(_)));
        // A zero-attempt policy is refused up front.
        let err = service
            .stage_with_retry(
                UpdateBatch::insert_only(vec![tx(&[1])]),
                RetryPolicy::attempts(0),
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::Stage(Error::Config(_))));
        drop(service);
    }

    #[test]
    fn service_error_display_names_the_problem() {
        assert!(ServiceError::ZeroPendingTrigger
            .to_string()
            .contains("manual"));
        assert!(ServiceError::InvalidIncrementRatio(-2.0)
            .to_string()
            .contains("-2"));
        assert!(ServiceError::ShutDown.to_string().contains("shut down"));
        assert!(ServiceError::ZeroRoundCap.to_string().contains("zero ops"));
        assert!(ServiceError::ZeroStagingCapacity
            .to_string()
            .contains("reject every batch"));
        let e = ServiceError::WouldBlock {
            pending: 7,
            capacity: 8,
        };
        assert!(e.to_string().contains("7/8"));
        let e = ServiceError::StageTimeout {
            pending: 9,
            capacity: 9,
        };
        assert!(e.to_string().contains("9/9"));
        assert!(ServiceError::FlushTimeout.to_string().contains("deadline"));
        assert!(ServiceError::CommitterGone.to_string().contains("panicked"));
        assert!(ServiceError::Degraded.to_string().contains("degraded"));
        assert!(ServiceError::Degraded.to_string().contains("heal"));
        let e = ServiceError::RetriesExhausted {
            attempts: 4,
            last: Box::new(ServiceError::Degraded),
        };
        assert!(e.to_string().contains("4 attempt(s)"));
        assert!(e.to_string().contains("degraded"));
        assert!(std::error::Error::source(&e).is_some());
        let e = ServiceError::Stage(Error::DeletionsDisabled);
        assert!(std::error::Error::source(&e).is_some());
    }
}

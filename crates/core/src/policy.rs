//! Update policies: when to maintain incrementally and when to re-mine.
//!
//! Figure 4 of the paper shows FUP's speed-up over re-mining declining as
//! the increment grows, levelling off (still above 1×) only when the
//! increment reaches ~3.5× the original database. §4.5 adds that FUP's
//! overhead *decreases* with increment size. In practice a deployment may
//! still prefer a periodic full re-mine — e.g. to compact the baseline
//! after massive churn — so the maintainer accepts a policy.

/// Decides, per update batch, whether to run the incremental algorithm
/// (FUP/FUP2) or a full re-mine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum UpdatePolicy {
    /// Always maintain incrementally (the paper's recommendation — FUP
    /// stays ahead of re-mining even for increments several times the
    /// database size).
    #[default]
    AlwaysIncremental,
    /// Re-mine from scratch when `(d⁺ + d⁻) / |DB|` exceeds the ratio.
    RemineOverRatio(f64),
    /// Always re-mine (the "possible approach" the paper's §1 argues
    /// against; useful as an experimental control).
    AlwaysRemine,
}

impl UpdatePolicy {
    /// `true` if this batch should be handled by a full re-mine.
    pub fn should_remine(&self, batch_size: u64, database_size: u64) -> bool {
        match *self {
            UpdatePolicy::AlwaysIncremental => false,
            UpdatePolicy::AlwaysRemine => true,
            UpdatePolicy::RemineOverRatio(ratio) => {
                debug_assert!(ratio >= 0.0, "ratio must be non-negative");
                batch_size as f64 > ratio * database_size as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_incremental_never_remines() {
        let p = UpdatePolicy::AlwaysIncremental;
        assert!(!p.should_remine(1_000_000, 1));
        assert_eq!(p, UpdatePolicy::default());
    }

    #[test]
    fn always_remine_always_does() {
        assert!(UpdatePolicy::AlwaysRemine.should_remine(1, 1_000_000));
    }

    #[test]
    fn ratio_threshold_is_strict() {
        let p = UpdatePolicy::RemineOverRatio(3.5);
        assert!(!p.should_remine(3_500, 1_000)); // exactly at ratio: keep FUP
        assert!(p.should_remine(3_501, 1_000));
        assert!(!p.should_remine(100, 1_000));
    }

    #[test]
    fn empty_database_with_ratio() {
        let p = UpdatePolicy::RemineOverRatio(1.0);
        // Any non-empty batch on an empty store exceeds 1.0 × 0.
        assert!(p.should_remine(1, 0));
        assert!(!p.should_remine(0, 0));
    }
}

//! FUP configuration knobs — each corresponds to an optimisation the paper
//! describes, so ablation benches can switch them off individually — plus
//! the counting-engine settings (worker threads, chunk size) every scan
//! routes through.

pub use fup_mining::engine::EngineConfig;

/// Configuration for [`Fup`](crate::Fup) and [`Fup2`](crate::Fup2).
#[derive(Debug, Clone)]
pub struct FupConfig {
    /// Apply the `Reduce-db` / `Reduce-DB` transaction trimming and the
    /// P-set item removal of §3.4. Disabling re-scans the original
    /// sources every iteration.
    pub reduce_db: bool,
    /// Integrate DHP's direct hashing over the increment to thin the
    /// size-2 candidate set before it is ever counted (§3.4, last
    /// paragraph).
    pub dhp_hash: bool,
    /// Bucket count for the pair hash table when `dhp_hash` is on.
    pub hash_buckets: usize,
    /// Stop after this iteration. `None` runs until no itemsets remain.
    pub max_k: Option<usize>,
    /// Counting-engine settings for every scan: `threads` defaults to the
    /// machine's available parallelism; `threads = 1` reproduces the
    /// historical serial scans (and their `ScanMetrics` charges) exactly.
    /// `engine.gen` controls the `apriori-gen` join+prune worker count the
    /// same way (candidate output is byte-identical at every setting).
    /// `engine.backend` picks the support-counting strategy
    /// ([`CountingBackend`](fup_mining::CountingBackend)): under
    /// `Vertical` (or `Auto` past its thresholds) FUP builds the old-DB
    /// tid-lists once, extends them with the increment's delta scan, and
    /// answers every later pass by split intersections — results are
    /// bit-identical to the hash-tree scans, only the scan schedule
    /// changes.
    pub engine: EngineConfig,
}

impl Default for FupConfig {
    fn default() -> Self {
        FupConfig {
            reduce_db: true,
            dhp_hash: true,
            hash_buckets: 1 << 20,
            max_k: None,
            engine: EngineConfig::default(),
        }
    }
}

impl FupConfig {
    /// The paper's full configuration (all optimisations on).
    pub fn full() -> Self {
        Self::default()
    }

    /// A bare configuration with every optional optimisation off — the
    /// ablation baseline (lemma-based pruning alone, which is FUP's core
    /// and cannot be disabled). The counting engine stays at its default;
    /// parallelism is orthogonal to the paper's optimisations.
    pub fn bare() -> Self {
        FupConfig {
            reduce_db: false,
            dhp_hash: false,
            hash_buckets: 1,
            max_k: None,
            engine: EngineConfig::default(),
        }
    }

    /// This configuration with an explicit engine thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.engine.threads = threads;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_all_paper_optimisations() {
        let c = FupConfig::default();
        assert!(c.reduce_db);
        assert!(c.dhp_hash);
        assert!(c.hash_buckets > 0);
        assert_eq!(c.max_k, None);
    }

    #[test]
    fn bare_disables_optional_parts() {
        let c = FupConfig::bare();
        assert!(!c.reduce_db);
        assert!(!c.dhp_hash);
    }
}

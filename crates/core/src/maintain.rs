//! High-level rule maintenance: the API a downstream application uses.
//!
//! [`RuleMaintainer`] owns the transaction store, the current large
//! itemsets, and the current strong rules. Each
//! [`apply_update`](RuleMaintainer::apply_update) stages the batch on the
//! store, runs FUP (pure insertions) or FUP2 (with deletions) against the
//! staged views, commits, regenerates rules, and reports exactly what the
//! update changed.

use crate::config::FupConfig;
use crate::diff::{ItemsetDiff, RuleDiff};
use crate::error::Result;
use crate::fup::{Fup, FupOutcome};
use crate::fup2::Fup2;
use crate::policy::UpdatePolicy;
use fup_mining::rules::generate_rules;
use fup_mining::{Apriori, LargeItemsets, MinConfidence, MinSupport, MiningStats, RuleSet};
use fup_tidb::{SegmentedDb, Tid, Transaction, UpdateBatch};

/// What one maintenance round changed.
#[derive(Debug, Clone)]
pub struct MaintenanceReport {
    /// Which algorithm ran ("fup" for pure insertions, "fup2" otherwise).
    pub algorithm: &'static str,
    /// Itemsets that emerged / expired.
    pub itemsets: ItemsetDiff,
    /// Rules that appeared / disappeared.
    pub rules: RuleDiff,
    /// Tids assigned to the inserted transactions.
    pub inserted_tids: Vec<Tid>,
    /// Database size after the update.
    pub num_transactions: u64,
    /// Per-pass mining statistics of the incremental run.
    pub stats: MiningStats,
}

/// Keeps discovered association rules current across database updates.
#[derive(Debug)]
pub struct RuleMaintainer {
    store: SegmentedDb,
    large: LargeItemsets,
    rules: RuleSet,
    minsup: MinSupport,
    minconf: MinConfidence,
    config: FupConfig,
    policy: UpdatePolicy,
}

impl RuleMaintainer {
    /// Builds the initial state: loads `history` into the store, mines it
    /// from scratch with Apriori, and derives the initial rules.
    pub fn bootstrap(
        history: Vec<Transaction>,
        minsup: MinSupport,
        minconf: MinConfidence,
    ) -> Self {
        Self::bootstrap_with_config(history, minsup, minconf, FupConfig::default())
    }

    /// [`bootstrap`](Self::bootstrap) with an explicit FUP configuration.
    pub fn bootstrap_with_config(
        history: Vec<Transaction>,
        minsup: MinSupport,
        minconf: MinConfidence,
        config: FupConfig,
    ) -> Self {
        let store = SegmentedDb::from_transactions(history);
        let large = Apriori::new().run(&store, minsup).large;
        let rules = generate_rules(&large, minconf);
        RuleMaintainer {
            store,
            large,
            rules,
            minsup,
            minconf,
            config,
            policy: UpdatePolicy::default(),
        }
    }

    /// Sets the incremental-vs-remine policy (see [`UpdatePolicy`]).
    pub fn set_policy(&mut self, policy: UpdatePolicy) {
        self.policy = policy;
    }

    /// The active update policy.
    pub fn policy(&self) -> UpdatePolicy {
        self.policy
    }

    /// The current strong rules.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The current large itemsets with support counts.
    pub fn large_itemsets(&self) -> &LargeItemsets {
        &self.large
    }

    /// The underlying store (read access).
    pub fn store(&self) -> &SegmentedDb {
        &self.store
    }

    /// Number of live transactions.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The configured minimum support.
    pub fn minsup(&self) -> MinSupport {
        self.minsup
    }

    /// The configured minimum confidence.
    pub fn minconf(&self) -> MinConfidence {
        self.minconf
    }

    /// Applies an insert/delete batch incrementally, keeping itemsets and
    /// rules current, and reports what changed.
    ///
    /// Pure insertions run the paper's FUP; batches with deletions run
    /// FUP2. On error (e.g. unknown tid in `deletes`) the store is left
    /// unchanged.
    pub fn apply_update(&mut self, batch: UpdateBatch) -> Result<MaintenanceReport> {
        let batch_size = batch.inserts.len() as u64 + batch.deletes.len() as u64;
        if self
            .policy
            .should_remine(batch_size, self.store.len() as u64)
        {
            return self.apply_by_remine(batch);
        }
        let staged = self.store.stage(batch)?;
        let pure_insert = staged.num_deleted() == 0;
        let outcome: FupOutcome = if pure_insert {
            // While staged with no deletions, the store is exactly the old
            // `DB`.
            match Fup::with_config(self.config.clone()).update(
                &self.store,
                &self.large,
                staged.inserted(),
                self.minsup,
            ) {
                Ok(o) => o,
                Err(e) => {
                    self.store.abort(staged);
                    return Err(e);
                }
            }
        } else {
            match Fup2::with_config(self.config.clone()).update(
                &self.store,
                &self.large,
                staged.deleted(),
                staged.inserted(),
                self.minsup,
            ) {
                Ok(o) => o,
                Err(e) => {
                    self.store.abort(staged);
                    return Err(e);
                }
            }
        };
        let algorithm = if pure_insert { "fup" } else { "fup2" };
        let (_seg, inserted_tids) = self.store.commit(staged);

        let new_rules = generate_rules(&outcome.large, self.minconf);
        let report = MaintenanceReport {
            algorithm,
            itemsets: ItemsetDiff::between(&self.large, &outcome.large),
            rules: RuleDiff::between(&self.rules, &new_rules),
            inserted_tids,
            num_transactions: self.store.len() as u64,
            stats: outcome.stats,
        };
        self.large = outcome.large;
        self.rules = new_rules;
        Ok(report)
    }

    /// Applies a batch by committing it and re-mining from scratch — the
    /// path [`UpdatePolicy`] routes to for very large batches.
    fn apply_by_remine(&mut self, batch: UpdateBatch) -> Result<MaintenanceReport> {
        let staged = self.store.stage(batch)?;
        let (_seg, inserted_tids) = self.store.commit(staged);
        let outcome = Apriori::new().run(&self.store, self.minsup);
        let new_rules = generate_rules(&outcome.large, self.minconf);
        let report = MaintenanceReport {
            algorithm: "apriori-remine",
            itemsets: ItemsetDiff::between(&self.large, &outcome.large),
            rules: RuleDiff::between(&self.rules, &new_rules),
            inserted_tids,
            num_transactions: self.store.len() as u64,
            stats: outcome.stats,
        };
        self.large = outcome.large;
        self.rules = new_rules;
        Ok(report)
    }

    /// Re-mines from scratch (Apriori) and replaces the maintained state —
    /// an escape hatch for threshold changes, plus the reference the
    /// consistency check uses.
    pub fn remine(&mut self) -> &LargeItemsets {
        self.large = Apriori::new().run(&self.store, self.minsup).large;
        self.rules = generate_rules(&self.large, self.minconf);
        &self.large
    }

    /// Verifies that the incrementally-maintained itemsets equal a full
    /// re-mine. Intended for tests and audits; scans the whole store.
    pub fn verify_consistency(&self) -> std::result::Result<(), Vec<String>> {
        let fresh = Apriori::new().run(&self.store, self.minsup).large;
        if self.large.same_itemsets(&fresh) {
            Ok(())
        } else {
            Err(self.large.diff(&fresh))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fup_mining::Itemset;

    fn tx(items: &[u32]) -> Transaction {
        Transaction::from_items(items.iter().copied())
    }

    fn s(items: &[u32]) -> Itemset {
        Itemset::from_items(items.iter().copied())
    }

    fn maintainer() -> RuleMaintainer {
        RuleMaintainer::bootstrap(
            vec![
                tx(&[1, 2, 3]),
                tx(&[1, 2]),
                tx(&[2, 3]),
                tx(&[1, 3]),
                tx(&[4, 5]),
            ],
            MinSupport::percent(40),
            MinConfidence::percent(60),
        )
    }

    #[test]
    fn bootstrap_mines_and_derives_rules() {
        let m = maintainer();
        assert_eq!(m.len(), 5);
        assert!(m.large_itemsets().contains(&s(&[1, 2])));
        assert!(!m.rules().is_empty());
        assert_eq!(m.minsup(), MinSupport::percent(40));
        assert_eq!(m.minconf(), MinConfidence::percent(60));
        m.verify_consistency().unwrap();
    }

    #[test]
    fn insert_update_maintains_consistency_and_reports() {
        let mut m = maintainer();
        let report = m
            .apply_update(UpdateBatch::insert_only(vec![
                tx(&[4, 5]),
                tx(&[4, 5]),
                tx(&[4, 5, 1]),
            ]))
            .unwrap();
        assert_eq!(report.algorithm, "fup");
        assert_eq!(report.num_transactions, 8);
        assert_eq!(report.inserted_tids.len(), 3);
        // {4,5} was at 1/5; now 4/8 = 50 % ≥ 40 % → emerged.
        assert!(report.itemsets.emerged.contains(&s(&[4, 5])));
        m.verify_consistency().unwrap();
    }

    #[test]
    fn delete_update_routes_to_fup2() {
        let mut m = maintainer();
        let tid0 = m.store().iter().next().unwrap().0;
        let report = m
            .apply_update(UpdateBatch {
                inserts: vec![tx(&[4, 5])],
                deletes: vec![tid0],
            })
            .unwrap();
        assert_eq!(report.algorithm, "fup2");
        assert_eq!(report.num_transactions, 5);
        m.verify_consistency().unwrap();
    }

    #[test]
    fn failed_update_leaves_state_intact() {
        let mut m = maintainer();
        let before_rules = m.rules().len();
        let err = m.apply_update(UpdateBatch {
            inserts: vec![tx(&[9])],
            deletes: vec![Tid(12345)],
        });
        assert!(err.is_err());
        assert_eq!(m.len(), 5);
        assert_eq!(m.rules().len(), before_rules);
        m.verify_consistency().unwrap();
    }

    #[test]
    fn successive_updates_stay_consistent() {
        let mut m = maintainer();
        for round in 0..5u32 {
            let batch = UpdateBatch::insert_only(vec![
                tx(&[1, 2, round + 6]),
                tx(&[2, 3]),
                tx(&[round + 6, round + 7]),
            ]);
            m.apply_update(batch).unwrap();
            m.verify_consistency()
                .unwrap_or_else(|d| panic!("round {round}: {d:?}"));
        }
        assert_eq!(m.len(), 20);
    }

    #[test]
    fn rule_diff_reports_appearing_rules() {
        let mut m = RuleMaintainer::bootstrap(
            vec![tx(&[1, 2]), tx(&[1, 3]), tx(&[2, 3]), tx(&[1])],
            MinSupport::percent(50),
            MinConfidence::percent(80),
        );
        // Flood with {1,2} so the rule 2 ⇒ 1 becomes strong.
        let report = m
            .apply_update(UpdateBatch::insert_only(vec![
                tx(&[1, 2]),
                tx(&[1, 2]),
                tx(&[1, 2]),
                tx(&[1, 2]),
            ]))
            .unwrap();
        assert!(
            report
                .rules
                .added
                .iter()
                .any(|r| r.antecedent == s(&[2]) && r.consequent == s(&[1])),
            "added: {:?}",
            report.rules.added
        );
        m.verify_consistency().unwrap();
    }

    #[test]
    fn remine_resets_state() {
        let mut m = maintainer();
        m.apply_update(UpdateBatch::insert_only(vec![tx(&[7, 8]), tx(&[7, 8])]))
            .unwrap();
        let before = m.large_itemsets().clone();
        m.remine();
        assert!(m.large_itemsets().same_itemsets(&before));
    }

    #[test]
    fn remine_policy_routes_large_batches() {
        let mut m = maintainer();
        m.set_policy(UpdatePolicy::RemineOverRatio(2.0));
        assert_eq!(m.policy(), UpdatePolicy::RemineOverRatio(2.0));
        // Small batch (1 ≤ 2 × 5): incremental.
        let r = m
            .apply_update(UpdateBatch::insert_only(vec![tx(&[1, 2])]))
            .unwrap();
        assert_eq!(r.algorithm, "fup");
        // Huge batch (13 > 2 × 6): re-mine.
        let big: Vec<Transaction> = (0..13).map(|_| tx(&[1, 2, 9])).collect();
        let r = m.apply_update(UpdateBatch::insert_only(big)).unwrap();
        assert_eq!(r.algorithm, "apriori-remine");
        assert_eq!(r.inserted_tids.len(), 13);
        m.verify_consistency().unwrap();
        // Results are identical regardless of path: diff reports consistent
        // emergence of the flooded itemset.
        assert!(m.large_itemsets().contains(&s(&[1, 2, 9])));
    }

    #[test]
    fn remine_policy_handles_deletions() {
        let mut m = maintainer();
        m.set_policy(UpdatePolicy::AlwaysRemine);
        let tid0 = m.store().iter().next().unwrap().0;
        let r = m
            .apply_update(UpdateBatch::delete_only(vec![tid0]))
            .unwrap();
        assert_eq!(r.algorithm, "apriori-remine");
        assert_eq!(r.num_transactions, 4);
        m.verify_consistency().unwrap();
    }

    #[test]
    fn empty_store_bootstrap() {
        let m = RuleMaintainer::bootstrap(
            Vec::new(),
            MinSupport::percent(50),
            MinConfidence::percent(50),
        );
        assert!(m.is_empty());
        assert!(m.rules().is_empty());
    }
}

//! The legacy batch-style maintenance entry point, kept as a thin
//! deprecated shim over the session API.
//!
//! [`RuleMaintainer`] predates [`crate::Maintainer`]: it
//! bootstraps and applies each update in one blocking call, with no
//! staging, no snapshots, and stringly/silent error reporting in its
//! administrative methods. It now delegates everything to an inner
//! [`Maintainer`] session — behaviour (and results)
//! are bit-identical — and exists only so downstream code migrates at its
//! own pace. New code should use
//! [`Maintainer::builder`](crate::Maintainer::builder).
//!
//! **Removal timeline:** deprecated since 0.2.0; the shim will be
//! deleted in **0.4.0** (two minor releases after deprecation). Until
//! then it receives no new functionality — in particular, none of the
//! concurrent-service surface
//! ([`MaintainerService`](crate::service::MaintainerService), staged
//! handles, snapshot cells) is mirrored here. CI pins the set of files
//! allowed to mention `RuleMaintainer`, so remaining in-tree usage is
//! audited until the deletion lands.

pub use crate::session::MaintenanceReport;

use crate::config::FupConfig;
use crate::error::Result;
use crate::policy::UpdatePolicy;
use crate::session::Maintainer;
use fup_mining::{LargeItemsets, MinConfidence, MinSupport, RuleSet};
use fup_tidb::{SegmentedDb, Transaction, UpdateBatch};

/// Keeps discovered association rules current across database updates.
///
/// Deprecated: this is the pre-session API. It still works (as a shim
/// over [`Maintainer`]), but new code should build a
/// session instead:
///
/// ```
/// use fup_core::Maintainer;
/// use fup_mining::{MinConfidence, MinSupport};
///
/// let m = Maintainer::builder()
///     .min_support(MinSupport::percent(50))
///     .min_confidence(MinConfidence::percent(70))
///     .build(Vec::new())
///     .unwrap();
/// assert!(m.is_empty());
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use `Maintainer::builder()` — the session API with staged commits, \
            snapshot reads, and typed configuration errors; this shim will be \
            removed in 0.4.0"
)]
#[derive(Debug)]
pub struct RuleMaintainer {
    inner: Maintainer,
}

#[allow(deprecated)]
impl RuleMaintainer {
    /// Builds the initial state: loads `history` into the store, mines it
    /// from scratch with Apriori, and derives the initial rules.
    pub fn bootstrap(
        history: Vec<Transaction>,
        minsup: MinSupport,
        minconf: MinConfidence,
    ) -> Self {
        Self::bootstrap_with_config(history, minsup, minconf, FupConfig::default())
    }

    /// [`bootstrap`](Self::bootstrap) with an explicit FUP configuration.
    /// Unlike [`MaintainerBuilder::build`](crate::MaintainerBuilder::build),
    /// the configuration is accepted unvalidated — the historical
    /// behaviour this shim preserves.
    pub fn bootstrap_with_config(
        history: Vec<Transaction>,
        minsup: MinSupport,
        minconf: MinConfidence,
        config: FupConfig,
    ) -> Self {
        RuleMaintainer {
            inner: Maintainer::bootstrap_unchecked(history, minsup, minconf, config),
        }
    }

    /// Sets the incremental-vs-remine policy (see [`UpdatePolicy`]).
    ///
    /// # Panics
    ///
    /// Panics on policies the session's configuration cannot honor (this
    /// method historically accepted them silently; the replacement
    /// returns them as typed errors instead).
    #[deprecated(
        since = "0.2.0",
        note = "use `Maintainer::set_policy`, which returns a typed `BuildError` \
                for policies the configured session cannot honor"
    )]
    pub fn set_policy(&mut self, policy: UpdatePolicy) {
        if let Err(e) = self.inner.set_policy(policy) {
            panic!("invalid update policy: {e}");
        }
    }

    /// The active update policy.
    pub fn policy(&self) -> UpdatePolicy {
        self.inner.policy()
    }

    /// The current strong rules.
    pub fn rules(&self) -> &RuleSet {
        self.inner.rules()
    }

    /// The current large itemsets with support counts.
    pub fn large_itemsets(&self) -> &LargeItemsets {
        self.inner.large_itemsets()
    }

    /// The underlying store (read access).
    pub fn store(&self) -> &SegmentedDb {
        self.inner.store()
    }

    /// Number of live transactions.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The configured minimum support.
    pub fn minsup(&self) -> MinSupport {
        self.inner.minsup()
    }

    /// The configured minimum confidence.
    pub fn minconf(&self) -> MinConfidence {
        self.inner.minconf()
    }

    /// Applies an insert/delete batch incrementally, keeping itemsets and
    /// rules current, and reports what changed.
    ///
    /// Pure insertions run the paper's FUP; batches with deletions run
    /// FUP2. On error (e.g. unknown tid in `deletes`) the store is left
    /// unchanged.
    pub fn apply_update(&mut self, batch: UpdateBatch) -> Result<MaintenanceReport> {
        self.inner.apply(batch)
    }

    /// Re-mines from scratch (Apriori) and replaces the maintained state —
    /// an escape hatch for threshold changes, plus the reference the
    /// consistency check uses.
    pub fn remine(&mut self) -> &LargeItemsets {
        self.inner.remine()
    }

    /// Verifies that the incrementally-maintained itemsets equal a full
    /// re-mine. Intended for tests and audits; scans the whole store.
    #[deprecated(
        since = "0.2.0",
        note = "use `Maintainer::verify_consistency`, which returns the typed \
                `Error::Inconsistent` instead of a raw `Vec<String>`"
    )]
    pub fn verify_consistency(&self) -> std::result::Result<(), Vec<String>> {
        self.inner.verify_consistency().map_err(|e| match e {
            crate::error::Error::Inconsistent { differences } => differences,
            other => vec![other.to_string()],
        })
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use fup_mining::Itemset;
    use fup_tidb::Tid;

    fn tx(items: &[u32]) -> Transaction {
        Transaction::from_items(items.iter().copied())
    }

    fn s(items: &[u32]) -> Itemset {
        Itemset::from_items(items.iter().copied())
    }

    fn maintainer() -> RuleMaintainer {
        RuleMaintainer::bootstrap(
            vec![
                tx(&[1, 2, 3]),
                tx(&[1, 2]),
                tx(&[2, 3]),
                tx(&[1, 3]),
                tx(&[4, 5]),
            ],
            MinSupport::percent(40),
            MinConfidence::percent(60),
        )
    }

    #[test]
    fn bootstrap_mines_and_derives_rules() {
        let m = maintainer();
        assert_eq!(m.len(), 5);
        assert!(m.large_itemsets().contains(&s(&[1, 2])));
        assert!(!m.rules().is_empty());
        assert_eq!(m.minsup(), MinSupport::percent(40));
        assert_eq!(m.minconf(), MinConfidence::percent(60));
        m.verify_consistency().unwrap();
    }

    #[test]
    fn insert_update_maintains_consistency_and_reports() {
        let mut m = maintainer();
        let report = m
            .apply_update(UpdateBatch::insert_only(vec![
                tx(&[4, 5]),
                tx(&[4, 5]),
                tx(&[4, 5, 1]),
            ]))
            .unwrap();
        assert_eq!(report.algorithm, "fup");
        assert_eq!(report.num_transactions, 8);
        assert_eq!(report.inserted_tids.len(), 3);
        // {4,5} was at 1/5; now 4/8 = 50 % ≥ 40 % → emerged.
        assert!(report.itemsets.emerged.contains(&s(&[4, 5])));
        m.verify_consistency().unwrap();
    }

    #[test]
    fn delete_update_routes_to_fup2() {
        let mut m = maintainer();
        let tid0 = m.store().iter().next().unwrap().0;
        let report = m
            .apply_update(UpdateBatch {
                inserts: vec![tx(&[4, 5])],
                deletes: vec![tid0],
            })
            .unwrap();
        assert_eq!(report.algorithm, "fup2");
        assert_eq!(report.num_transactions, 5);
        m.verify_consistency().unwrap();
    }

    #[test]
    fn failed_update_leaves_state_intact() {
        let mut m = maintainer();
        let before_rules = m.rules().len();
        let err = m.apply_update(UpdateBatch {
            inserts: vec![tx(&[9])],
            deletes: vec![Tid(12345)],
        });
        assert!(err.is_err());
        assert_eq!(m.len(), 5);
        assert_eq!(m.rules().len(), before_rules);
        m.verify_consistency().unwrap();
    }

    #[test]
    fn successive_updates_stay_consistent() {
        let mut m = maintainer();
        for round in 0..5u32 {
            let batch = UpdateBatch::insert_only(vec![
                tx(&[1, 2, round + 6]),
                tx(&[2, 3]),
                tx(&[round + 6, round + 7]),
            ]);
            m.apply_update(batch).unwrap();
            m.verify_consistency()
                .unwrap_or_else(|d| panic!("round {round}: {d:?}"));
        }
        assert_eq!(m.len(), 20);
    }

    #[test]
    fn rule_diff_reports_appearing_rules() {
        let mut m = RuleMaintainer::bootstrap(
            vec![tx(&[1, 2]), tx(&[1, 3]), tx(&[2, 3]), tx(&[1])],
            MinSupport::percent(50),
            MinConfidence::percent(80),
        );
        // Flood with {1,2} so the rule 2 ⇒ 1 becomes strong.
        let report = m
            .apply_update(UpdateBatch::insert_only(vec![
                tx(&[1, 2]),
                tx(&[1, 2]),
                tx(&[1, 2]),
                tx(&[1, 2]),
            ]))
            .unwrap();
        assert!(
            report
                .rules
                .added
                .iter()
                .any(|r| r.antecedent == s(&[2]) && r.consequent == s(&[1])),
            "added: {:?}",
            report.rules.added
        );
        m.verify_consistency().unwrap();
    }

    #[test]
    fn remine_resets_state() {
        let mut m = maintainer();
        m.apply_update(UpdateBatch::insert_only(vec![tx(&[7, 8]), tx(&[7, 8])]))
            .unwrap();
        let before = m.large_itemsets().clone();
        m.remine();
        assert!(m.large_itemsets().same_itemsets(&before));
    }

    #[test]
    fn remine_policy_routes_large_batches() {
        let mut m = maintainer();
        m.set_policy(UpdatePolicy::RemineOverRatio(2.0));
        assert_eq!(m.policy(), UpdatePolicy::RemineOverRatio(2.0));
        // Small batch (1 ≤ 2 × 5): incremental.
        let r = m
            .apply_update(UpdateBatch::insert_only(vec![tx(&[1, 2])]))
            .unwrap();
        assert_eq!(r.algorithm, "fup");
        // Huge batch (13 > 2 × 6): re-mine.
        let big: Vec<Transaction> = (0..13).map(|_| tx(&[1, 2, 9])).collect();
        let r = m.apply_update(UpdateBatch::insert_only(big)).unwrap();
        assert_eq!(r.algorithm, "apriori-remine");
        assert_eq!(r.inserted_tids.len(), 13);
        m.verify_consistency().unwrap();
        // Results are identical regardless of path: diff reports consistent
        // emergence of the flooded itemset.
        assert!(m.large_itemsets().contains(&s(&[1, 2, 9])));
    }

    #[test]
    fn remine_policy_handles_deletions() {
        let mut m = maintainer();
        m.set_policy(UpdatePolicy::AlwaysRemine);
        let tid0 = m.store().iter().next().unwrap().0;
        let r = m
            .apply_update(UpdateBatch::delete_only(vec![tid0]))
            .unwrap();
        assert_eq!(r.algorithm, "apriori-remine");
        assert_eq!(r.num_transactions, 4);
        m.verify_consistency().unwrap();
    }

    #[test]
    #[should_panic(expected = "invalid update policy")]
    fn set_policy_panics_on_invalid_ratio() {
        let mut m = maintainer();
        m.set_policy(UpdatePolicy::RemineOverRatio(-1.0));
    }

    #[test]
    fn empty_store_bootstrap() {
        let m = RuleMaintainer::bootstrap(
            Vec::new(),
            MinSupport::percent(50),
            MinConfidence::percent(50),
        );
        assert!(m.is_empty());
        assert!(m.rules().is_empty());
    }
}

//! The FUP algorithm (§3 of the paper).
//!
//! Each iteration `k` does (at most) two scans — one over the small
//! increment `db`, one over the original database `DB`:
//!
//! 1. **Filter the old large itemsets.** `W = L_k` minus the Lemma-3
//!    losers (supersets of (k−1)-losers need no scan at all). One scan of
//!    `db` updates `X.support_UD = X.support_D + X.support_d` for every
//!    `X ∈ W`; Lemma 1/4 decides winners and losers exactly.
//! 2. **Find the new large itemsets.** Candidates
//!    `C_k = apriori-gen(L'_{k−1}) − L_k` are counted *in the same `db`
//!    scan*; Lemma 2/5 prunes every candidate whose increment support is
//!    below `s × d`. Only the survivors are counted against `DB`.
//!
//! The `Reduce-db`/`Reduce-DB` trimming and the P-set optimisation of §3.4
//! shrink the scanned data each iteration, and DHP-style pair hashing over
//! the increment (also §3.4) thins `C₂` before it is ever counted.

use crate::config::FupConfig;
use crate::error::{Error, Result};
use crate::reduce;
use crate::vindex::{IndexSlot, SlotProvider, VerticalProvider};
use fup_mining::engine::{self, pair_bucket, ChunkedCollector};
use fup_mining::gen::apriori_gen_with;
use fup_mining::vertical::{PassProfile, ResolvedBackend};
use fup_mining::{
    HashTree, Itemset, ItemsetTable, LargeItemsets, MinSupport, MiningStats, PassStats,
};
use fup_tidb::{ItemId, TransactionDb, TransactionSource};
use std::collections::HashSet;
use std::time::Instant;

/// Per-iteration detail beyond the common [`PassStats`] — the quantities
/// the paper's narrative tracks (losers filtered for free, candidates
/// pruned by the increment check, winners from each side).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FupPassDetail {
    /// Iteration number `k`.
    pub k: usize,
    /// `|L_k|` — old large itemsets entering the iteration.
    pub old_large: u64,
    /// Old itemsets discarded by Lemma 3 without scanning anything.
    pub lemma3_losers: u64,
    /// Old itemsets confirmed large in `DB ∪ db` (scan of `db` only).
    pub winners_from_old: u64,
    /// `|apriori-gen(L'_{k−1}) − L_k|` (or, for k = 1, distinct new items
    /// seen in the increment).
    pub candidates_generated: u64,
    /// Candidates surviving the DHP pair-hash filter (k = 2 only;
    /// equals `candidates_generated` elsewhere).
    pub candidates_after_hash: u64,
    /// Candidates surviving the Lemma-2/5 increment-support pruning —
    /// the pool actually counted against `DB` (the Figure 3 quantity).
    pub candidates_checked: u64,
    /// New large itemsets found among the candidates.
    pub winners_from_new: u64,
}

/// The result of one FUP run.
#[derive(Debug, Clone)]
pub struct FupOutcome {
    /// `L'`: all large itemsets of `DB ∪ db` with exact support counts.
    pub large: LargeItemsets,
    /// Common per-pass statistics (comparable with Apriori/DHP).
    pub stats: MiningStats,
    /// FUP-specific per-pass detail.
    pub detail: Vec<FupPassDetail>,
}

/// The FUP incremental updater.
#[derive(Debug, Clone, Default)]
pub struct Fup {
    config: FupConfig,
}

impl Fup {
    /// Creates an updater with the paper's full configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an updater with an explicit configuration.
    pub fn with_config(config: FupConfig) -> Self {
        Fup { config }
    }

    /// Computes `L'`, the large itemsets of `DB ∪ db`.
    ///
    /// * `db` — the original database (the paper's `DB`, `D` transactions),
    /// * `old` — its large itemsets **with support counts**, as produced by
    ///   a previous mining run at the same `minsup`,
    /// * `increment` — the new transactions (the paper's `db`, `d`),
    /// * `minsup` — the unchanged minimum support threshold.
    ///
    /// Fails with [`Error::StaleBaseline`] if `old` was not mined over a
    /// database of exactly `db`'s size.
    pub fn update(
        &self,
        db: &dyn TransactionSource,
        old: &LargeItemsets,
        increment: &dyn TransactionSource,
        minsup: MinSupport,
    ) -> Result<FupOutcome> {
        self.update_with_index(db, old, increment, minsup, &mut IndexSlot::new())
    }

    /// [`update`](Self::update) with a persistent [`IndexSlot`]: when the
    /// vertical backend engages, the slot's held index is reused (extended
    /// with the increment's delta scan — no scan of `db`) if it covers
    /// `db`, and the round's index is stashed back on success so the next
    /// round can extend it again. See the [`crate::vindex`] module docs
    /// for the reuse contract; [`Fup::update`] passes a throwaway slot and
    /// reproduces the historical build-per-round behaviour exactly.
    pub fn update_with_index(
        &self,
        db: &dyn TransactionSource,
        old: &LargeItemsets,
        increment: &dyn TransactionSource,
        minsup: MinSupport,
        slot: &mut IndexSlot,
    ) -> Result<FupOutcome> {
        let boundary = db.num_transactions();
        let mut provider = SlotProvider::new(slot, db, increment, boundary);
        self.update_with_provider(db, old, increment, minsup, &mut provider)
    }

    /// [`update_with_index`](Self::update_with_index) generalised over the
    /// source of vertical splits: the flat session passes a
    /// [`SlotProvider`] (one index over `DB`), the sharded session a
    /// [`ShardProvider`](crate::shard::ShardProvider) (one index per tid
    /// shard, splits merged by summation). Every threshold decision is
    /// made on the summed supports, so the result is provider-independent.
    pub(crate) fn update_with_provider(
        &self,
        db: &dyn TransactionSource,
        old: &LargeItemsets,
        increment: &dyn TransactionSource,
        minsup: MinSupport,
        provider: &mut dyn VerticalProvider,
    ) -> Result<FupOutcome> {
        let start = Instant::now();
        let d_orig = db.num_transactions();
        if old.num_transactions() != d_orig {
            return Err(Error::StaleBaseline {
                baseline: old.num_transactions(),
                database: d_orig,
            });
        }
        let d_inc = increment.num_transactions();
        let n = d_orig + d_inc;

        // Empty increment: DB ∪ db = DB, so the baseline is the answer.
        if d_inc == 0 {
            let mut stats = MiningStats::new("fup");
            stats.elapsed = start.elapsed();
            return Ok(FupOutcome {
                large: old.clone(),
                stats,
                detail: Vec::new(),
            });
        }

        let mut result = LargeItemsets::new(n);
        let mut stats = MiningStats::new("fup");
        let mut detail = Vec::new();

        // ------------------------- Iteration 1 -------------------------
        // One scan of the increment: per-item counts, plus (optionally)
        // DHP pair-bucket counts for the iteration-2 filter. Bucket count
        // adapts to the increment: ~one bucket per expected pair
        // occurrence gives strong filtering without allocating a huge
        // table for a small `db`. `config.hash_buckets` caps it.
        let nbuckets = if self.config.dhp_hash {
            let estimated_pairs = (d_inc.saturating_mul(64)).next_power_of_two();
            estimated_pairs.clamp(1024, self.config.hash_buckets.max(1024) as u64) as usize
        } else {
            0
        };
        let (inc_item_counts, pair_buckets) =
            engine::count_items_and_pairs(increment, nbuckets, &self.config.engine);
        let inc_count =
            |item: ItemId| -> u64 { inc_item_counts.get(item.index()).copied().unwrap_or(0) };

        // Winners and losers among the old L₁ (Lemma 1).
        let mut losers_prev: HashSet<Itemset> = HashSet::new();
        let mut winners_from_old = 0u64;
        for (x, sup_d_orig) in old.level(1) {
            let item = x.items()[0];
            let sup_ud = sup_d_orig + inc_count(item);
            if minsup.is_large(sup_ud, n) {
                result.insert(x.clone(), sup_ud);
                winners_from_old += 1;
            } else {
                losers_prev.insert(x.clone());
            }
        }

        // New candidates from the increment (Lemma 2) and the P set.
        let mut c1: Vec<(ItemId, u64)> = Vec::new();
        let mut p_pruned = 0u64; // |P|: items Lemma 2 proved hopeless
        let mut generated1 = 0u64;
        for (i, &count) in inc_item_counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let item = ItemId(i as u32);
            if old.contains(&Itemset::single(item)) {
                continue;
            }
            generated1 += 1;
            if minsup.is_large(count, d_inc) {
                c1.push((item, count));
            } else {
                p_pruned += 1;
            }
        }

        // Scan DB for the C₁ supports (skipped entirely when Lemma 2
        // pruned every candidate — FUP's headline saving).
        //
        // Deviation from the paper's letter, kept to its spirit: the paper
        // rewrites DB without the P items *during* this scan, because on
        // disk the rewrite rides along for free. In memory a copy is pure
        // overhead, and the `Reduce-DB` keep-set applied at iteration 2
        // (items of `L₂ ∪ C₂` only) strictly subsumes P-removal, so the
        // first trimmed copy is built there instead.
        let mut db_working: Option<TransactionDb> = None;
        let mut winners_from_new1 = 0u64;
        if !c1.is_empty() {
            let c1_items: Vec<ItemId> = c1.iter().map(|(item, _)| *item).collect();
            let c1_db_counts =
                if let Some(counts) = provider.count_base_items(&c1_items, &self.config.engine) {
                    // A remote provider counted DB where its rows live; the
                    // summed per-shard counts are the same sums this scan
                    // would have produced.
                    counts
                } else {
                    // Items are dense, so the candidate index is a flat array
                    // (u32::MAX = not a candidate) — no hashing in the hot loop.
                    let max_item = c1.iter().map(|(i, _)| i.index()).max().unwrap_or(0);
                    let mut index_of: Vec<u32> = vec![u32::MAX; max_item + 1];
                    for (idx, (item, _)) in c1.iter().enumerate() {
                        index_of[item.index()] = idx as u32;
                    }
                    let tables = engine::scan_fold(
                        db,
                        &self.config.engine,
                        || vec![0u64; c1.len()],
                        |counts: &mut Vec<u64>, _chunk, t| {
                            for &item in t {
                                if let Some(&idx) = index_of.get(item.index()) {
                                    if idx != u32::MAX {
                                        counts[idx as usize] += 1;
                                    }
                                }
                            }
                        },
                    );
                    engine::merge_dense(tables)
                };
            for ((item, sup_d), sup_db) in c1.iter().zip(&c1_db_counts) {
                let sup_ud = sup_db + sup_d;
                if minsup.is_large(sup_ud, n) {
                    result.insert(Itemset::single(*item), sup_ud);
                    winners_from_new1 += 1;
                }
            }
        }
        debug_assert_eq!(generated1, c1.len() as u64 + p_pruned);

        stats.passes.push(PassStats {
            k: 1,
            candidates_generated: generated1,
            candidates_checked: c1.len() as u64,
            large_found: winners_from_old + winners_from_new1,
        });
        detail.push(FupPassDetail {
            k: 1,
            old_large: old.len_at(1) as u64,
            lemma3_losers: 0,
            winners_from_old,
            candidates_generated: generated1,
            candidates_after_hash: generated1,
            candidates_checked: c1.len() as u64,
            winners_from_new: winners_from_new1,
        });

        // --------------------- Iterations k ≥ 2 ------------------------
        // Backend selection input: the increment's raw average transaction
        // length stands in for the frequent-item residue the miners feed
        // `Auto` (the frequent set of DB ∪ db is not known here without
        // extra work) — an overestimate on filler-heavy data, so `Auto`
        // may engage slightly earlier than the calibrated thresholds
        // intend; the index itself *is* filtered to old L₁ ∪ new L₁ (see
        // `vindex::build_update_index`).
        let residue = inc_item_counts.iter().sum::<u64>() as f64 / d_inc as f64;
        // The vertical index (or per-shard indexes) covering DB ∪ db is
        // built lazily by the provider: the old-DB tid-lists are
        // materialised once and the increment's delta scan only *extends*
        // them, after which one intersection per itemset yields
        // (support in DB, support in db) split at tid |DB|.
        let mut inc_working: Option<TransactionDb> = None;
        let mut k = 2;
        while (old.len_at(k) > 0 || result.len_at(k - 1) > 0)
            && self.config.max_k.is_none_or(|m| k <= m)
        {
            // Lemma 3: drop old itemsets with a losing (k−1)-subset.
            let mut w: Vec<(Itemset, u64)> = Vec::with_capacity(old.len_at(k));
            let mut lemma3 = 0u64;
            let mut losers_k: HashSet<Itemset> = HashSet::new();
            for (x, sup) in old.level(k) {
                let lost = !losers_prev.is_empty()
                    && x.proper_subsets().any(|sub| losers_prev.contains(&sub));
                if lost {
                    lemma3 += 1;
                    losers_k.insert(x.clone());
                } else {
                    w.push((x.clone(), sup));
                }
            }

            // C_k = apriori-gen(L'_{k−1}) − L_k.
            let prev_new: Vec<Itemset> = result.level(k - 1).map(|(x, _)| x.clone()).collect();
            let mut candidates: Vec<Itemset> = apriori_gen_with(&prev_new, &self.config.engine.gen)
                .into_iter()
                .filter(|x| !old.contains(x))
                .collect();
            let generated = candidates.len() as u64;

            // DHP hash filter for the size-2 candidates (§3.4): a pair's
            // bucket total bounds its increment support, so a light bucket
            // proves Lemma 5's condition fails.
            if k == 2 && nbuckets > 0 {
                candidates.retain(|c| {
                    let b = pair_bucket(c.items()[0], c.items()[1], nbuckets);
                    minsup.is_large(pair_buckets[b], d_inc)
                });
            }
            let after_hash = candidates.len() as u64;

            if w.is_empty() && candidates.is_empty() {
                stats.passes.push(PassStats {
                    k,
                    candidates_generated: generated,
                    candidates_checked: 0,
                    large_found: 0,
                });
                detail.push(FupPassDetail {
                    k,
                    old_large: old.len_at(k) as u64,
                    lemma3_losers: lemma3,
                    winners_from_old: 0,
                    candidates_generated: generated,
                    candidates_after_hash: after_hash,
                    candidates_checked: 0,
                    winners_from_new: 0,
                });
                // Every remaining old itemset at this level is a loser.
                losers_prev = losers_k;
                k += 1;
                continue;
            }

            // Vertical path (sticky once engaged): every W and C support
            // comes from tid-list intersections split at |DB| — no scan
            // of either source beyond the one-time index build. Decisions
            // mirror the hash-tree path exactly (Lemma 4 on W, Lemma 5
            // gating candidates), so the result is bit-identical.
            // Only `C` can force scans of the big original database (W is
            // counted over the small increment either way), so backend
            // selection weighs the candidate pool alone: FUP's own
            // pruning usually keeps it tiny, and then the classic path is
            // already near-optimal.
            let use_vertical = provider.engaged()
                || self.config.engine.backend.resolve(&PassProfile {
                    k,
                    candidates: candidates.len(),
                    transactions: n,
                    residue,
                }) == ResolvedBackend::Vertical;
            if use_vertical {
                provider.engage(old, &result, &self.config.engine);
                // Trimmed working copies are never consulted again.
                inc_working = None;
                db_working = None;
                let w_table = crate::vindex::sorted_w_table(&mut w, k);
                let w_splits = provider.count_split(&w_table, &self.config.engine);
                let mut winners_old_k = 0u64;
                for ((x, sup_d_orig), (_, sup_d)) in w.iter().zip(&w_splits) {
                    let sup_ud = sup_d_orig + sup_d;
                    if minsup.is_large(sup_ud, n) {
                        result.insert(x.clone(), sup_ud);
                        winners_old_k += 1;
                    } else {
                        losers_k.insert(x.clone());
                    }
                }
                let c_table = ItemsetTable::from_sorted_itemsets(&candidates);
                let c_splits = provider.count_split(&c_table, &self.config.engine);
                let mut checked = 0u64;
                let mut winners_new_k = 0u64;
                for (x, (sup_db, sup_d)) in candidates.into_iter().zip(c_splits) {
                    // Lemma 5: candidates light in the increment cannot
                    // win; keeping the gate keeps the `checked` statistic
                    // (and the result) identical to the scanning path.
                    if !minsup.is_large(sup_d, d_inc) {
                        continue;
                    }
                    checked += 1;
                    let sup_ud = sup_db + sup_d;
                    if minsup.is_large(sup_ud, n) {
                        result.insert(x, sup_ud);
                        winners_new_k += 1;
                    }
                }
                stats.passes.push(PassStats {
                    k,
                    candidates_generated: generated,
                    candidates_checked: checked,
                    large_found: winners_old_k + winners_new_k,
                });
                detail.push(FupPassDetail {
                    k,
                    old_large: old.len_at(k) as u64,
                    lemma3_losers: lemma3,
                    winners_from_old: winners_old_k,
                    candidates_generated: generated,
                    candidates_after_hash: after_hash,
                    candidates_checked: checked,
                    winners_from_new: winners_new_k,
                });
                losers_prev = losers_k;
                k += 1;
                continue;
            }

            // One scan of the increment counts W and C together.
            let w_len = w.len();
            let mut combined: Vec<Itemset> = Vec::with_capacity(w_len + candidates.len());
            combined.extend(w.iter().map(|(x, _)| x.clone()));
            combined.extend(candidates.iter().cloned());
            let mut tree = HashTree::build(combined);

            // One engine pass over the increment: every worker counts into
            // its own scratch; `Reduce-db` keeps trimmed transactions per
            // chunk so the working copy is deterministic.
            let reduce_inc = self.config.reduce_db;
            {
                let src: &dyn TransactionSource = match &inc_working {
                    Some(wdb) => wdb,
                    None => increment,
                };
                let view = tree.view();
                let folds = engine::scan_fold(
                    src,
                    &self.config.engine,
                    || (tree.new_scratch(), ChunkedCollector::new()),
                    |(scratch, kept), chunk, t| {
                        if reduce_inc {
                            let mut matched: Vec<usize> = Vec::new();
                            view.count_with(t, scratch, &mut |i| matched.push(i));
                            if let Some(reduced) = reduce::reduce_db_transaction(
                                t,
                                matched.iter().map(|&i| view.candidate(i)),
                                k,
                            ) {
                                kept.push(chunk, reduced);
                            }
                        } else {
                            view.count(t, scratch);
                        }
                    },
                );
                let mut collectors = Vec::with_capacity(folds.len());
                for (scratch, kept) in folds {
                    tree.absorb(scratch);
                    collectors.push(kept);
                }
                if reduce_inc {
                    inc_working = Some(TransactionDb::from_transactions(ChunkedCollector::merge(
                        collectors,
                    )));
                }
            }
            let inc_counts = tree.counts().to_vec();

            // Winners/losers among W (Lemma 4).
            let mut winners_old_k = 0u64;
            for (idx, (x, sup_d_orig)) in w.iter().enumerate() {
                let sup_ud = sup_d_orig + inc_counts[idx];
                if minsup.is_large(sup_ud, n) {
                    result.insert(x.clone(), sup_ud);
                    winners_old_k += 1;
                } else {
                    losers_k.insert(x.clone());
                }
            }

            // Lemma 5: prune candidates light in the increment.
            let mut pruned: Vec<(Itemset, u64)> = Vec::new();
            for (idx, x) in candidates.into_iter().enumerate() {
                let sup_d = inc_counts[w_len + idx];
                if minsup.is_large(sup_d, d_inc) {
                    pruned.push((x, sup_d));
                }
            }
            let checked = pruned.len() as u64;

            // Scan DB for the surviving candidates; apply Reduce-DB.
            let mut winners_new_k = 0u64;
            if !pruned.is_empty() {
                let keep_items = if self.config.reduce_db {
                    Some(reduce::item_universe(
                        old.level(k)
                            .map(|(x, _)| x)
                            .chain(pruned.iter().map(|(x, _)| x)),
                    ))
                } else {
                    None
                };
                let cand_sets: Vec<Itemset> = pruned.iter().map(|(x, _)| x.clone()).collect();
                let mut ctree = HashTree::build(cand_sets);
                {
                    let src: &dyn TransactionSource = match &db_working {
                        Some(wdb) => wdb,
                        None => db,
                    };
                    let view = ctree.view();
                    let keep_ref = keep_items.as_ref();
                    let folds = engine::scan_fold(
                        src,
                        &self.config.engine,
                        || (ctree.new_scratch(), ChunkedCollector::new()),
                        |(scratch, kept), chunk, t| {
                            view.count(t, scratch);
                            if let Some(keep) = keep_ref {
                                if let Some(reduced) = reduce::reduce_full_transaction(t, keep, k) {
                                    kept.push(chunk, reduced);
                                }
                            }
                        },
                    );
                    let mut collectors = Vec::with_capacity(folds.len());
                    for (scratch, kept) in folds {
                        ctree.absorb(scratch);
                        collectors.push(kept);
                    }
                    if keep_items.is_some() {
                        db_working = Some(TransactionDb::from_transactions(
                            ChunkedCollector::merge(collectors),
                        ));
                    }
                }
                for ((x, sup_d), sup_db) in pruned.into_iter().zip(ctree.counts()) {
                    let sup_ud = sup_db + sup_d;
                    if minsup.is_large(sup_ud, n) {
                        result.insert(x, sup_ud);
                        winners_new_k += 1;
                    }
                }
            }

            stats.passes.push(PassStats {
                k,
                candidates_generated: generated,
                candidates_checked: checked,
                large_found: winners_old_k + winners_new_k,
            });
            detail.push(FupPassDetail {
                k,
                old_large: old.len_at(k) as u64,
                lemma3_losers: lemma3,
                winners_from_old: winners_old_k,
                candidates_generated: generated,
                candidates_after_hash: after_hash,
                candidates_checked: checked,
                winners_from_new: winners_new_k,
            });

            losers_prev = losers_k;
            k += 1;
        }

        // The provider's index(es) now cover DB ∪ db — exactly the
        // database after this update commits; the next round can extend.
        provider.finish();
        stats.elapsed = start.elapsed();
        Ok(FupOutcome {
            large: result,
            stats,
            detail,
        })
    }
}

/// Convenience: mines the baseline with Apriori, then maintains it with
/// FUP — used pervasively in tests and examples.
pub fn mine_then_update(
    db: &dyn TransactionSource,
    increment: &dyn TransactionSource,
    minsup: MinSupport,
    config: FupConfig,
) -> Result<FupOutcome> {
    let baseline = fup_mining::Apriori::new().run(db, minsup).large;
    Fup::with_config(config).update(db, &baseline, increment, minsup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fup_mining::apriori::mine_naive;
    use fup_mining::Apriori;
    use fup_tidb::source::ChainSource;
    use fup_tidb::{Transaction, TransactionDb};

    fn db(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::from_transactions(
            rows.iter()
                .map(|r| Transaction::from_items(r.iter().copied())),
        )
    }

    fn s(items: &[u32]) -> Itemset {
        Itemset::from_items(items.iter().copied())
    }

    /// The central correctness property: FUP(DB, L, db) equals a full
    /// re-mine of DB ∪ db.
    fn assert_fup_matches_remine(
        original: &TransactionDb,
        increment: &TransactionDb,
        minsup: MinSupport,
        config: FupConfig,
    ) -> FupOutcome {
        let outcome = mine_then_update(original, increment, minsup, config).unwrap();
        let whole = ChainSource::new(original, increment);
        let remined = Apriori::new().run(&whole, minsup).large;
        assert!(
            outcome.large.same_itemsets(&remined),
            "FUP disagrees with re-mining: {:?}",
            outcome.large.diff(&remined)
        );
        outcome
    }

    #[test]
    fn paper_example_1_first_iteration() {
        // D = 1000, d = 100, s = 3%. I1, I2 large with supports 32, 31.
        // In db: I1 appears 4×, I2 1×, I3 6×, I4 2×.
        // Expected: I1 stays (36 ≥ 33), I2 loses (32 < 33), I4 pruned
        // from C1 (2 < 3), I3 checked against DB (28 there) → 34 ≥ 33.
        let mut original = TransactionDb::new();
        // 32 transactions with I1, 31 with I2, 28 with I3; pad to 1000.
        for i in 0..1000u32 {
            let mut items = vec![900 + (i % 50)]; // filler items, never large
            if i < 32 {
                items.push(1);
            }
            if i < 31 {
                items.push(2);
            }
            if i < 28 {
                items.push(3);
            }
            original.push(Transaction::from_items(items));
        }
        let mut increment = TransactionDb::new();
        for i in 0..100u32 {
            let mut items = vec![800 + (i % 50)];
            if i < 4 {
                items.push(1);
            }
            if i < 1 {
                items.push(2);
            }
            if i < 6 {
                items.push(3);
            }
            if i < 2 {
                items.push(4);
            }
            increment.push(Transaction::from_items(items));
        }
        let minsup = MinSupport::percent(3);
        let baseline = Apriori::new().run(&original, minsup).large;
        assert_eq!(baseline.support(&s(&[1])), Some(32));
        assert_eq!(baseline.support(&s(&[2])), Some(31));
        assert_eq!(baseline.support(&s(&[3])), None); // 28 < 30

        let out = Fup::new()
            .update(&original, &baseline, &increment, minsup)
            .unwrap();
        assert_eq!(out.large.support(&s(&[1])), Some(36));
        assert_eq!(out.large.support(&s(&[2])), None); // loser
        assert_eq!(out.large.support(&s(&[3])), Some(34)); // new winner
        assert_eq!(out.large.support(&s(&[4])), None); // pruned by Lemma 2

        let d1 = &out.detail[0];
        assert_eq!(d1.winners_from_old, 1);
        assert_eq!(d1.winners_from_new, 1);
        // I4 was generated as a candidate but pruned before the DB scan.
        assert!(d1.candidates_checked < d1.candidates_generated);
    }

    #[test]
    fn equivalence_on_small_handcrafted_updates() {
        let original = db(&[
            &[1, 2, 3],
            &[1, 2],
            &[2, 3, 4],
            &[1, 3, 4],
            &[2, 4],
            &[1, 2, 3, 4],
        ]);
        let increment = db(&[&[1, 2, 3, 4], &[4, 5], &[1, 5], &[2, 3]]);
        for pct in [10, 25, 40, 60, 90] {
            assert_fup_matches_remine(
                &original,
                &increment,
                MinSupport::percent(pct),
                FupConfig::full(),
            );
            assert_fup_matches_remine(
                &original,
                &increment,
                MinSupport::percent(pct),
                FupConfig::bare(),
            );
        }
    }

    #[test]
    fn equivalence_against_naive_reference() {
        let original = db(&[&[1, 2, 3], &[2, 3], &[1, 3], &[3, 4]]);
        let increment = db(&[&[1, 2], &[1, 2, 3], &[4]]);
        let minsup = MinSupport::percent(40);
        let out = mine_then_update(&original, &increment, minsup, FupConfig::full()).unwrap();
        let whole = ChainSource::new(&original, &increment);
        let naive = mine_naive(&whole, minsup);
        assert!(
            out.large.same_itemsets(&naive),
            "{:?}",
            out.large.diff(&naive)
        );
    }

    #[test]
    fn empty_increment_returns_baseline() {
        let original = db(&[&[1, 2], &[1, 2], &[3]]);
        let increment = db(&[]);
        let minsup = MinSupport::percent(50);
        let baseline = Apriori::new().run(&original, minsup).large;
        let out = Fup::new()
            .update(&original, &baseline, &increment, minsup)
            .unwrap();
        assert!(out.large.same_itemsets(&baseline));
        assert_eq!(out.stats.num_passes(), 0);
    }

    #[test]
    fn empty_original_database() {
        let original = db(&[]);
        let increment = db(&[&[1, 2], &[1, 2], &[2, 3]]);
        let minsup = MinSupport::percent(50);
        assert_fup_matches_remine(&original, &increment, minsup, FupConfig::full());
    }

    #[test]
    fn stale_baseline_is_rejected() {
        let original = db(&[&[1], &[2]]);
        let increment = db(&[&[3]]);
        let wrong = LargeItemsets::new(99);
        let err = Fup::new()
            .update(&original, &wrong, &increment, MinSupport::percent(10))
            .unwrap_err();
        assert!(matches!(
            err,
            Error::StaleBaseline {
                baseline: 99,
                database: 2
            }
        ));
    }

    #[test]
    fn increment_larger_than_database() {
        // §4.4/Figure 4 territory: d ≫ D must still be exact.
        let original = db(&[&[1, 2], &[2, 3]]);
        let increment = db(&[
            &[1, 2, 3],
            &[1, 2],
            &[1, 3],
            &[2, 3],
            &[1, 2, 3],
            &[3, 4],
            &[1, 4],
            &[2, 4],
        ]);
        for pct in [20, 40, 60] {
            assert_fup_matches_remine(
                &original,
                &increment,
                MinSupport::percent(pct),
                FupConfig::full(),
            );
        }
    }

    #[test]
    fn deep_itemsets_are_maintained() {
        // A 4-itemset that only becomes large thanks to the increment.
        let original = db(&[
            &[1, 2, 3, 4],
            &[1, 2, 3, 4],
            &[5, 6],
            &[5, 6],
            &[1, 2],
            &[3, 4],
        ]);
        let increment = db(&[&[1, 2, 3, 4], &[1, 2, 3, 4], &[5, 6]]);
        let minsup = MinSupport::ratio(4, 9); // 4 of 9
        let out = assert_fup_matches_remine(&original, &increment, minsup, FupConfig::full());
        assert_eq!(out.large.support(&s(&[1, 2, 3, 4])), Some(4));
    }

    #[test]
    fn losers_cascade_via_lemma3() {
        // {1,2} is large initially; the increment floods unrelated
        // transactions so 1 itself drops below threshold. The 2-itemset
        // must be filtered by Lemma 3 without a candidate scan.
        let original = db(&[&[1, 2], &[1, 2], &[3], &[3]]);
        let increment = db(&[&[3], &[3], &[3], &[3]]);
        let minsup = MinSupport::percent(50);
        let out = assert_fup_matches_remine(&original, &increment, minsup, FupConfig::full());
        assert!(!out.large.contains(&s(&[1, 2])));
        let d2 = out.detail.iter().find(|d| d.k == 2).unwrap();
        assert_eq!(d2.lemma3_losers, 1);
        assert_eq!(d2.winners_from_old, 0);
    }

    #[test]
    fn vertical_backend_matches_remine_and_hash_tree() {
        use fup_mining::{CountingBackend, EngineConfig};
        let original = db(&[
            &[1, 2, 3, 4],
            &[1, 2, 3],
            &[2, 3, 4],
            &[1, 3, 4],
            &[2, 4],
            &[1, 2, 4, 5],
            &[5, 6],
        ]);
        let increment = db(&[&[1, 2, 3, 4], &[4, 5, 6], &[1, 5], &[2, 3, 6]]);
        for pct in [15, 30, 50] {
            let minsup = MinSupport::percent(pct);
            let vertical_cfg = FupConfig {
                engine: EngineConfig::default().with_backend(CountingBackend::Vertical),
                ..FupConfig::full()
            };
            let out = assert_fup_matches_remine(&original, &increment, minsup, vertical_cfg);
            // And the per-pass statistics agree with the hash-tree path.
            let hash = mine_then_update(&original, &increment, minsup, FupConfig::full()).unwrap();
            assert_eq!(out.detail, hash.detail, "minsup {pct}%");
        }
    }

    #[test]
    fn reduce_db_configurations_agree() {
        let original = db(&[
            &[1, 2, 3, 4, 5],
            &[1, 2, 3],
            &[2, 3, 4],
            &[1, 4, 5],
            &[2, 5],
            &[1, 2, 4, 5],
        ]);
        let increment = db(&[&[1, 2, 3], &[3, 4, 5], &[1, 2, 3, 4, 5], &[2, 3]]);
        for pct in [20, 35, 50] {
            let minsup = MinSupport::percent(pct);
            let full = mine_then_update(&original, &increment, minsup, FupConfig::full()).unwrap();
            let bare = mine_then_update(&original, &increment, minsup, FupConfig::bare()).unwrap();
            assert!(
                full.large.same_itemsets(&bare.large),
                "minsup {pct}%: {:?}",
                full.large.diff(&bare.large)
            );
        }
    }

    #[test]
    fn no_db_scan_when_no_candidates_survive() {
        // All increment items already large; C1 empty and C2 pruned to
        // nothing → with trimming disabled, DB is never scanned after
        // pass 1.
        let original = db(&[&[1, 2], &[1, 2], &[1, 2], &[1, 2]]);
        let increment = db(&[&[1, 2]]);
        let minsup = MinSupport::percent(80);
        let baseline = Apriori::new().run(&original, minsup).large;
        let scans_before = original.metrics().full_scans();
        let out = Fup::with_config(FupConfig::bare())
            .update(&original, &baseline, &increment, minsup)
            .unwrap();
        // No candidates at any level → zero additional DB scans.
        assert_eq!(original.metrics().full_scans(), scans_before);
        assert!(out.large.contains(&s(&[1, 2])));
        assert_eq!(out.large.support(&s(&[1, 2])), Some(5));
    }

    #[test]
    fn max_k_limits_iterations() {
        let original = db(&[&[1, 2, 3], &[1, 2, 3]]);
        let increment = db(&[&[1, 2, 3]]);
        let minsup = MinSupport::percent(100);
        let baseline = Apriori::new().run(&original, minsup).large;
        let out = Fup::with_config(FupConfig {
            max_k: Some(2),
            ..FupConfig::full()
        })
        .update(&original, &baseline, &increment, minsup)
        .unwrap();
        assert_eq!(out.large.max_size(), 2);
    }

    #[test]
    fn detail_candidate_accounting_is_consistent() {
        let original = db(&[&[1, 2, 3], &[1, 2], &[2, 3], &[1, 3], &[4, 5]]);
        let increment = db(&[&[4, 5], &[4, 5], &[1, 2, 3]]);
        let out = mine_then_update(
            &original,
            &increment,
            MinSupport::percent(40),
            FupConfig::full(),
        )
        .unwrap();
        for d in &out.detail {
            assert!(d.candidates_after_hash <= d.candidates_generated, "{d:?}");
            assert!(d.candidates_checked <= d.candidates_after_hash, "{d:?}");
            assert!(d.winners_from_new <= d.candidates_checked, "{d:?}");
            assert!(d.winners_from_old + d.lemma3_losers <= d.old_large, "{d:?}");
        }
        // Stats mirror detail.
        assert_eq!(out.stats.num_passes(), out.detail.len());
    }
}

//! Vertical-index plumbing for the maintenance layer: the shared bits of
//! the FUP/FUP2 vertical counting paths (index construction and `W` table
//! building), plus [`IndexSlot`] — the holder that lets a
//! [`Maintainer`](crate::Maintainer) keep one [`VerticalIndex`] alive
//! *across* maintenance rounds instead of rebuilding it on first use every
//! round.
//!
//! ## The persistent-index contract
//!
//! A [`VerticalIndex`] identifies transactions positionally (tid = scan
//! order), so an index stored in a slot is only reusable for a later
//! update if the update's base source replays **exactly** the transactions
//! the index covers, in the same order, and the index's build filter still
//! covers every item the round needs. The slot's acquire step checks both
//! (size match + [`VerticalIndex::covers`]); when they hold it *extends*
//! the held index with the round's delta (one scan of the small delta, no
//! scan of the base), and otherwise it rebuilds from scratch. The
//! [`Maintainer`](crate::Maintainer) upholds the order half of the
//! contract by clearing the slot whenever the store mutates in a way the
//! slot did not track (deletions reorder the live set).

use fup_mining::vertical::item_bitmap;
use fup_mining::{EngineConfig, Itemset, ItemsetTable, LargeItemsets, VerticalIndex};
use fup_tidb::TransactionSource;

/// Holds a [`VerticalIndex`] between FUP/FUP2 rounds so insert-only
/// updates extend it (one delta scan) instead of rebuilding it (a full
/// base scan). Rebuilds still happen — and are counted — when a round's
/// base does not match what the index covers (deletions) or when a newly
/// frequent item falls outside the build filter (dictionary growth).
///
/// The default slot is empty; the first round that engages the vertical
/// backend builds into it.
#[derive(Debug, Default)]
pub struct IndexSlot {
    index: Option<VerticalIndex>,
    builds: u64,
    extends: u64,
    touched: bool,
}

impl IndexSlot {
    /// An empty slot (no index held yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` if the slot currently holds an index.
    pub fn has_index(&self) -> bool {
        self.index.is_some()
    }

    /// Number of from-scratch index builds this slot has performed.
    pub fn builds(&self) -> u64 {
        self.builds
    }

    /// Number of times the held index was extended with a delta instead
    /// of being rebuilt.
    pub fn extends(&self) -> u64 {
        self.extends
    }

    /// Drops the held index (the next round that wants one rebuilds).
    /// Called by the maintainer whenever the store mutates in a way the
    /// slot did not track.
    pub fn clear(&mut self) {
        self.index = None;
    }

    /// Seeds the slot with a freshly built index over `base`, filtered to
    /// `keep_items` (see [`item_bitmap`]). Used at bootstrap when the
    /// backend is pinned vertical, so even the *first* commit extends.
    pub fn seed<S>(
        &mut self,
        base: &S,
        keep_items: impl IntoIterator<Item = fup_tidb::ItemId>,
        engine: &EngineConfig,
    ) where
        S: TransactionSource + ?Sized,
    {
        let keep = item_bitmap(keep_items);
        self.builds += 1;
        self.index = Some(VerticalIndex::build(base, Some(&keep), engine));
    }

    /// Adopts an index built elsewhere — typically the one a bootstrap or
    /// re-mine [`Apriori::run_with_index`](fup_mining::Apriori::run_with_index)
    /// already paid for — counting it as a build. The caller guarantees
    /// the index covers the store's live set in scan order.
    pub fn adopt(&mut self, idx: VerticalIndex) {
        self.builds += 1;
        self.index = Some(idx);
    }

    /// Restores an index deserialised from a durable checkpoint without
    /// counting a build — the build was paid for (and counted) in the
    /// session that wrote the checkpoint.
    pub(crate) fn restore(&mut self, idx: VerticalIndex) {
        self.index = Some(idx);
    }

    /// The held index, if any — serialised into durable checkpoints when
    /// it covers the store in tid order.
    pub(crate) fn resident_index(&self) -> Option<&VerticalIndex> {
        self.index.as_ref()
    }

    /// Extends the held index (if any) with `delta` at the current tid
    /// offset — the maintainer's way of keeping the slot aligned with an
    /// insert-only commit whose counting ran on the hash-tree path.
    pub fn extend_with<S>(&mut self, delta: &S, engine: &EngineConfig)
    where
        S: TransactionSource + ?Sized,
    {
        if let Some(idx) = &mut self.index {
            idx.extend(delta, engine);
            self.extends += 1;
            self.touched = true;
        }
    }

    /// Takes an index an updater can count this round against: the `base`
    /// source's tid-lists extended by the `delta` source's scan (FUP: `DB`
    /// then the increment; FUP2: `DB⁻` then `db⁺`).
    ///
    /// Every `W` item is in the old `L₁` and every candidate item is in
    /// the updated `L₁` (both complete after iteration 1), so the index is
    /// filtered to their union and skips everything else. If the slot
    /// holds an index that already covers `base` (same transaction count —
    /// the caller guarantees same order — and a covering item filter),
    /// only `delta` is scanned; otherwise the index is rebuilt.
    ///
    /// The updater must [`stash`](IndexSlot::stash) the index back after a
    /// successful run so the next round can reuse it.
    pub(crate) fn acquire(
        &mut self,
        old: &LargeItemsets,
        result: &LargeItemsets,
        base: &dyn TransactionSource,
        delta: &dyn TransactionSource,
        engine: &EngineConfig,
    ) -> VerticalIndex {
        self.acquire_items(
            old.level(1)
                .chain(result.level(1))
                .map(|(x, _)| x.items()[0]),
            base,
            delta,
            engine,
        )
    }

    /// [`acquire`](IndexSlot::acquire) with the keep filter given as an
    /// explicit item list instead of the two `L₁` levels — the shape a
    /// cluster shard worker receives over the wire (the coordinator
    /// computes `old L₁ ∪ result L₁` and broadcasts just the items).
    /// Same reuse contract, same counters.
    pub(crate) fn acquire_items(
        &mut self,
        keep_items: impl IntoIterator<Item = fup_tidb::ItemId>,
        base: &dyn TransactionSource,
        delta: &dyn TransactionSource,
        engine: &EngineConfig,
    ) -> VerticalIndex {
        let keep = item_bitmap(keep_items);
        if let Some(mut idx) = self.index.take() {
            if idx.num_transactions() == base.num_transactions() && idx.covers(&keep) {
                idx.extend(delta, engine);
                self.extends += 1;
                return idx;
            }
        }
        self.builds += 1;
        let mut idx = VerticalIndex::build(base, Some(&keep), engine);
        idx.extend(delta, engine);
        idx
    }

    /// Returns an index to the slot after a successful update round. The
    /// index now covers the round's `base ∪ delta` — exactly the store
    /// after the round commits.
    pub(crate) fn stash(&mut self, idx: VerticalIndex) {
        self.index = Some(idx);
        self.touched = true;
    }

    /// Clears and returns the per-round "slot participated" flag — set by
    /// [`stash`](IndexSlot::stash) / [`extend_with`](IndexSlot::extend_with),
    /// read by the maintainer after each commit to decide whether the held
    /// index still matches the store.
    pub(crate) fn take_touched(&mut self) -> bool {
        std::mem::take(&mut self.touched)
    }
}

/// The vertical-counting seam of the FUP/FUP2 round loops: where the
/// per-pass `(support in base, support in delta)` splits come from once
/// the vertical backend engages. The flat session hands the loops a
/// [`SlotProvider`] (one index over the whole store — the historical
/// behaviour, bit for bit); the sharded session hands them a
/// [`ShardProvider`](crate::shard::ShardProvider) that keeps one index
/// per tid-range shard and merges local splits by summation (count
/// distribution). The loops cannot tell the difference: supports are
/// additive over disjoint tid ranges, so the summed splits equal the
/// whole-store splits exactly.
pub(crate) trait VerticalProvider {
    /// `true` once [`engage`](VerticalProvider::engage) has run — the
    /// round loops use this for the sticky once-vertical-always-vertical
    /// decision.
    fn engaged(&self) -> bool;

    /// Materialises the round's index (or indexes), filtered to
    /// `old L₁ ∪ result L₁`. Idempotent: a second call in the same round
    /// is a no-op.
    fn engage(&mut self, old: &LargeItemsets, result: &LargeItemsets, engine: &EngineConfig);

    /// `(support in base, support in delta)` for every row of `table`,
    /// in row order.
    ///
    /// # Panics
    ///
    /// May panic if [`engage`](VerticalProvider::engage) has not run.
    fn count_split(&self, table: &ItemsetTable, engine: &EngineConfig) -> Vec<(u64, u64)>;

    /// Pass-1 offload: supports of `items` in the round's **base** rows
    /// only (FUP's `C₁`-over-`DB` scan). `None` — the default, and what
    /// every in-process provider returns — tells the round loop to scan
    /// its base source directly, exactly as it always has; a remote
    /// provider whose base rows live in other processes answers
    /// `Some(counts)` (one per item, request order) and the loop skips
    /// the scan. Summed remote counts equal the local scan's counts (a
    /// support is a sum over disjoint tid ranges), so results stay
    /// bit-identical either way.
    fn count_base_items(
        &self,
        items: &[fup_tidb::ItemId],
        engine: &EngineConfig,
    ) -> Option<Vec<u64>> {
        let _ = (items, engine);
        None
    }

    /// Pass-1 offload, dense flavour: the full item histogram of the
    /// round's base rows (FUP2's all-items pass over `DB⁻`). Same
    /// contract as [`count_base_items`](VerticalProvider::count_base_items):
    /// `None` means "scan it yourself"; `Some(counts)` has `counts[i]`
    /// counting `ItemId(i)` and may be shorter than the dictionary
    /// (missing tail = zero occurrences).
    fn count_base_dense(&self, engine: &EngineConfig) -> Option<Vec<u64>> {
        let _ = engine;
        None
    }

    /// Returns the round's index (or indexes) to their slot(s) after a
    /// successful run. A no-op when the round never engaged.
    fn finish(&mut self);
}

/// The flat (single-store) [`VerticalProvider`]: one [`IndexSlot`], one
/// base source, one delta source, one boundary. Engaging acquires from
/// the slot; finishing stashes back — exactly the pre-provider code
/// path of `Fup::update_with_index`/`Fup2::update_with_index`.
pub(crate) struct SlotProvider<'a> {
    slot: &'a mut IndexSlot,
    base: &'a dyn TransactionSource,
    delta: &'a dyn TransactionSource,
    /// Tid splitting the base's supports from the delta's
    /// (`|DB|` for FUP, `|DB⁻|` for FUP2).
    boundary: u64,
    index: Option<VerticalIndex>,
}

impl<'a> SlotProvider<'a> {
    pub(crate) fn new(
        slot: &'a mut IndexSlot,
        base: &'a dyn TransactionSource,
        delta: &'a dyn TransactionSource,
        boundary: u64,
    ) -> Self {
        SlotProvider {
            slot,
            base,
            delta,
            boundary,
            index: None,
        }
    }
}

impl VerticalProvider for SlotProvider<'_> {
    fn engaged(&self) -> bool {
        self.index.is_some()
    }

    fn engage(&mut self, old: &LargeItemsets, result: &LargeItemsets, engine: &EngineConfig) {
        if self.index.is_none() {
            self.index = Some(
                self.slot
                    .acquire(old, result, self.base, self.delta, engine),
            );
        }
    }

    fn count_split(&self, table: &ItemsetTable, engine: &EngineConfig) -> Vec<(u64, u64)> {
        self.index
            .as_ref()
            .expect("engage() before count_split()")
            .count_rows_split(table, self.boundary, engine)
    }

    fn finish(&mut self) {
        if let Some(idx) = self.index.take() {
            self.slot.stash(idx);
        }
    }
}

/// Sorts `W` lexicographically (tables need sorted rows; `W` comes out
/// of a hash map) and returns its flat level table. The caller keeps
/// iterating `w` in the new order, so indices into parallel count
/// vectors stay aligned.
pub(crate) fn sorted_w_table(w: &mut [(Itemset, u64)], k: usize) -> ItemsetTable {
    w.sort_by(|a, b| a.0.cmp(&b.0));
    let mut rows = Vec::with_capacity(w.len() * k);
    for (x, _) in w.iter() {
        rows.extend_from_slice(x.items());
    }
    ItemsetTable::from_flat_rows(k, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fup_mining::MinSupport;
    use fup_tidb::{Transaction, TransactionDb};

    fn db(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::from_transactions(
            rows.iter()
                .map(|r| Transaction::from_items(r.iter().copied())),
        )
    }

    fn mine(d: &TransactionDb) -> LargeItemsets {
        fup_mining::Apriori::new()
            .run(d, MinSupport::percent(30))
            .large
    }

    #[test]
    fn acquire_reuses_matching_index_and_rebuilds_on_mismatch() {
        let base = db(&[&[1, 2], &[1, 2], &[2, 3], &[1, 3]]);
        let inc1 = db(&[&[1, 2], &[2, 3]]);
        let old = mine(&base);
        let cfg = EngineConfig::serial();

        let mut slot = IndexSlot::new();
        assert!(!slot.has_index());
        let idx = slot.acquire(&old, &LargeItemsets::new(6), &base, &inc1, &cfg);
        assert_eq!((slot.builds(), slot.extends()), (1, 0));
        assert_eq!(idx.num_transactions(), 6);
        slot.stash(idx);
        assert!(slot.take_touched());
        assert!(!slot.take_touched());

        // Next round: base is now base ∪ inc1 (6 transactions) — the held
        // index matches, so only the new delta is scanned.
        let merged = db(&[&[1, 2], &[1, 2], &[2, 3], &[1, 3], &[1, 2], &[2, 3]]);
        let old2 = mine(&merged);
        let inc2 = db(&[&[1, 3]]);
        let idx = slot.acquire(&old2, &LargeItemsets::new(7), &merged, &inc2, &cfg);
        assert_eq!((slot.builds(), slot.extends()), (1, 1));
        slot.stash(idx);

        // A cleared slot rebuilds.
        slot.clear();
        assert!(!slot.has_index());
        let _ = slot.acquire(&old2, &LargeItemsets::new(7), &merged, &inc2, &cfg);
        assert_eq!(slot.builds(), 2);
    }

    #[test]
    fn acquire_rebuilds_on_dictionary_growth() {
        let base = db(&[&[1, 2], &[1, 2], &[1, 2]]);
        let empty = db(&[]);
        let old = mine(&base);
        let cfg = EngineConfig::serial();
        let mut slot = IndexSlot::new();
        let idx = slot.acquire(&old, &LargeItemsets::new(3), &base, &empty, &cfg);
        slot.stash(idx);

        // Item 9 becomes large: it is outside the held index's filter, so
        // reuse is unsound and the slot must rebuild.
        let mut result = LargeItemsets::new(3);
        result.insert(Itemset::from_items([9u32]), 3);
        let idx = slot.acquire(&old, &result, &base, &empty, &cfg);
        assert_eq!((slot.builds(), slot.extends()), (2, 0));
        assert_eq!(idx.support(fup_tidb::ItemId(9)), 0); // filtered but covered
        assert!(idx.covers(&item_bitmap([fup_tidb::ItemId(9)])));
    }

    #[test]
    fn extend_with_keeps_slot_aligned() {
        let base = db(&[&[1, 2], &[1, 2]]);
        let old = mine(&base);
        let cfg = EngineConfig::serial();
        let mut slot = IndexSlot::new();
        let empty = db(&[]);
        let idx = slot.acquire(&old, &LargeItemsets::new(2), &base, &empty, &cfg);
        slot.stash(idx);
        let _ = slot.take_touched();

        let delta = db(&[&[1, 2], &[2]]);
        slot.extend_with(&delta, &cfg);
        assert_eq!(slot.extends(), 1);
        assert!(slot.take_touched());
        // Empty slots ignore the call.
        let mut empty_slot = IndexSlot::new();
        empty_slot.extend_with(&delta, &cfg);
        assert_eq!(empty_slot.extends(), 0);
    }
}

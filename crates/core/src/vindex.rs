//! Shared plumbing of the FUP/FUP2 vertical counting paths — the bits
//! that are identical between the two updaters (index construction and
//! `W` table building), kept in one place so they cannot drift.

use fup_mining::vertical::item_bitmap;
use fup_mining::{EngineConfig, Itemset, ItemsetTable, LargeItemsets, VerticalIndex};
use fup_tidb::TransactionSource;

/// Builds the vertical index an updater counts against: the `base`
/// source's tid-lists materialised once and extended by the `delta`
/// source's scan (FUP: `DB` then the increment; FUP2: `DB⁻` then `db⁺`).
///
/// Every `W` item is in the old `L₁` and every candidate item is in the
/// updated `L₁` (both complete after iteration 1), so the index is
/// filtered to their union and skips everything else.
pub(crate) fn build_update_index(
    old: &LargeItemsets,
    result: &LargeItemsets,
    base: &dyn TransactionSource,
    delta: &dyn TransactionSource,
    engine: &EngineConfig,
) -> VerticalIndex {
    let keep = item_bitmap(
        old.level(1)
            .chain(result.level(1))
            .map(|(x, _)| x.items()[0]),
    );
    let mut idx = VerticalIndex::build(base, Some(&keep), engine);
    idx.extend(delta, engine);
    idx
}

/// Sorts `W` lexicographically (tables need sorted rows; `W` comes out
/// of a hash map) and returns its flat level table. The caller keeps
/// iterating `w` in the new order, so indices into parallel count
/// vectors stay aligned.
pub(crate) fn sorted_w_table(w: &mut [(Itemset, u64)], k: usize) -> ItemsetTable {
    w.sort_by(|a, b| a.0.cmp(&b.0));
    let mut rows = Vec::with_capacity(w.len() * k);
    for (x, _) in w.iter() {
        rows.extend_from_slice(x.items());
    }
    ItemsetTable::from_flat_rows(k, rows)
}

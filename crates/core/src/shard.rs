//! Shard-parallel vertical counting for the maintenance session — the
//! count-distribution half of tid-range sharding.
//!
//! A [`ShardedDb`](fup_tidb::ShardedDb) partitions the live set into
//! disjoint tid ranges, and a support count is a sum over transactions —
//! so every `(support in base, support in delta)` split the FUP/FUP2
//! round loops ask for is the element-wise **sum of per-shard splits**:
//!
//! ```text
//! sup_base(X)  = Σᵢ sup_{baseᵢ}(X)      (shard i's base rows)
//! sup_delta(X) = Σᵢ sup_{deltaᵢ}(X)     (shard i's routed delta rows)
//! ```
//!
//! [`ShardProvider`] implements the
//! [`VerticalProvider`](crate::vindex::VerticalProvider) seam on exactly
//! that identity: one persistent [`IndexSlot`] per shard, each acquired
//! against its shard's base (`DBᵢ` for FUP, `DB⁻ᵢ` for FUP2 — after
//! staging, the shard *is* its remainder) and extended with the shard's
//! routed insert slice; `count_split` sums the per-shard splits. The
//! round loops gate every threshold decision on the summed supports, so
//! the result is bit-identical to the flat
//! [`SlotProvider`](crate::vindex::SlotProvider) for any shard count.
//!
//! Deletions invalidate only the shards they touch: each shard's slot is
//! reacquired independently, and the acquire step's size check (shard
//! row count vs. index coverage) rebuilds exactly the shards whose live
//! set changed — an untouched shard reuses its index and scans only its
//! delta slice.

use crate::vindex::{IndexSlot, VerticalProvider};
use fup_mining::{EngineConfig, ItemsetTable, LargeItemsets, VerticalIndex};
use fup_tidb::{ShardedDb, ShardedStaged, TransactionDb, TransactionSource};

/// One shard's contribution to the round: its persistent slot, its base
/// rows, its routed delta slice, and the boundary splitting the two.
struct ShardPart<'a> {
    slot: &'a mut IndexSlot,
    base: &'a dyn TransactionSource,
    delta: &'a TransactionDb,
    boundary: u64,
    index: Option<VerticalIndex>,
}

/// The sharded [`VerticalProvider`]: per-shard persistent indexes, local
/// splits merged by summation (count distribution).
pub(crate) struct ShardProvider<'a> {
    parts: Vec<ShardPart<'a>>,
}

impl<'a> ShardProvider<'a> {
    /// Assembles the provider for one maintenance round over `store`
    /// (already staged: each shard exposes its remainder) and the staged
    /// update's per-shard insert slices. `slots` must hold exactly one
    /// slot per shard, in shard order.
    pub(crate) fn new(
        store: &'a ShardedDb,
        staged: &'a ShardedStaged,
        slots: &'a mut [IndexSlot],
    ) -> Self {
        assert_eq!(
            slots.len(),
            store.num_shards(),
            "one index slot per shard required"
        );
        let parts = slots
            .iter_mut()
            .enumerate()
            .map(|(s, slot)| {
                let base = store.shard(s);
                ShardPart {
                    slot,
                    boundary: base.num_transactions(),
                    base,
                    delta: staged.shard_inserted(s),
                    index: None,
                }
            })
            .collect();
        ShardProvider { parts }
    }
}

impl VerticalProvider for ShardProvider<'_> {
    fn engaged(&self) -> bool {
        // Shards engage together (one loop in `engage`), so the first
        // part speaks for all of them.
        self.parts.first().is_some_and(|p| p.index.is_some())
    }

    fn engage(&mut self, old: &LargeItemsets, result: &LargeItemsets, engine: &EngineConfig) {
        for part in &mut self.parts {
            if part.index.is_none() {
                part.index = Some(
                    part.slot
                        .acquire(old, result, part.base, part.delta, engine),
                );
            }
        }
    }

    fn count_split(&self, table: &ItemsetTable, engine: &EngineConfig) -> Vec<(u64, u64)> {
        let mut totals: Vec<(u64, u64)> = vec![(0, 0); table.len()];
        for part in &self.parts {
            let idx = part.index.as_ref().expect("engage() before count_split()");
            let local = idx.count_rows_split(table, part.boundary, engine);
            for (acc, (b, d)) in totals.iter_mut().zip(local) {
                acc.0 += b;
                acc.1 += d;
            }
        }
        totals
    }

    fn finish(&mut self) {
        for part in &mut self.parts {
            if let Some(idx) = part.index.take() {
                part.slot.stash(idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vindex::SlotProvider;
    use fup_mining::{Apriori, Itemset, MinSupport};
    use fup_tidb::{SegmentedDb, ShardSpec, Transaction, UpdateBatch};

    fn tx(items: &[u32]) -> Transaction {
        Transaction::from_items(items.iter().copied())
    }

    fn rows(n: u64) -> Vec<Transaction> {
        (0..n)
            .map(|i| {
                let mut items = vec![(i % 5) as u32, 10 + (i % 3) as u32];
                if i % 2 == 0 {
                    items.push(20);
                }
                tx(&items)
            })
            .collect()
    }

    /// Per-shard splits summed must equal the flat single-index splits
    /// for the same logical update — the count-distribution identity the
    /// whole subsystem rests on.
    #[test]
    fn summed_shard_splits_equal_flat_splits() {
        let initial = rows(40);
        let batch = UpdateBatch {
            inserts: rows(10),
            deletes: vec![],
        };
        let minsup = MinSupport::percent(10);
        let engine = EngineConfig::serial();

        // Flat reference.
        let mut flat = SegmentedDb::from_transactions(initial.clone());
        let old = Apriori::new().run(&flat, minsup).large;
        let fs = flat.stage(batch.clone()).unwrap();
        let mut flat_slot = IndexSlot::new();
        let boundary = flat.num_transactions();
        let mut flat_provider = SlotProvider::new(&mut flat_slot, &flat, fs.inserted(), boundary);

        // Sharded, several shard counts.
        for shards in [1u32, 2, 3, 8] {
            let mut sharded = fup_tidb::ShardedDb::from_transactions(
                ShardSpec::striped_with(shards, 4),
                initial.clone(),
            )
            .unwrap();
            let ss = sharded.stage(batch.clone()).unwrap();
            let mut slots: Vec<IndexSlot> = (0..shards).map(|_| IndexSlot::new()).collect();
            let mut provider = ShardProvider::new(&sharded, &ss, &mut slots);

            let result = LargeItemsets::new(50);
            assert!(!provider.engaged());
            flat_provider.engage(&old, &result, &engine);
            provider.engage(&old, &result, &engine);
            assert!(provider.engaged());

            let sets: Vec<Itemset> = vec![
                Itemset::from_items([0u32, 10]),
                Itemset::from_items([0u32, 20]),
                Itemset::from_items([10u32, 20]),
            ];
            let table = ItemsetTable::from_sorted_itemsets(&sets);
            assert_eq!(
                provider.count_split(&table, &engine),
                flat_provider.count_split(&table, &engine),
                "{shards} shard(s)"
            );
            // Empty tables stay empty through the summation.
            assert!(provider
                .count_split(&ItemsetTable::empty(), &engine)
                .is_empty());

            provider.finish();
            for slot in &slots {
                assert!(slot.has_index(), "finish must stash every shard's index");
            }
        }
    }

    /// Deletions rebuild only the shards they touch; untouched shards
    /// extend their held index.
    #[test]
    fn deletes_invalidate_only_their_shard() {
        let initial = rows(24);
        // Stripe 4 over 2 shards: tids 0..4,8..12,16..20 → shard 0.
        let mut sharded =
            fup_tidb::ShardedDb::from_transactions(ShardSpec::striped_with(2, 4), initial).unwrap();
        let minsup = MinSupport::percent(10);
        let old = Apriori::new().run(&sharded, minsup).large;
        let engine = EngineConfig::serial();
        let mut slots: Vec<IndexSlot> = vec![IndexSlot::new(), IndexSlot::new()];

        // Round 1: insert-only — both shards build.
        let ss = sharded.stage(UpdateBatch::insert_only(rows(6))).unwrap();
        {
            let mut provider = ShardProvider::new(&sharded, &ss, &mut slots);
            provider.engage(&old, &LargeItemsets::new(30), &engine);
            provider.finish();
        }
        sharded.commit(ss);
        assert_eq!((slots[0].builds(), slots[1].builds()), (1, 1));

        // Round 2: delete one tid owned by shard 0. Shard 0 must rebuild
        // (its base shrank), shard 1 must extend.
        let old2 = Apriori::new().run(&sharded, minsup).large;
        let ss = sharded
            .stage(UpdateBatch {
                inserts: rows(4),
                deletes: vec![fup_tidb::Tid(1)],
            })
            .unwrap();
        {
            let mut provider = ShardProvider::new(&sharded, &ss, &mut slots);
            provider.engage(&old2, &LargeItemsets::new(33), &engine);
            provider.finish();
        }
        sharded.commit(ss);
        assert_eq!((slots[0].builds(), slots[0].extends()), (2, 0));
        assert_eq!((slots[1].builds(), slots[1].extends()), (1, 1));
    }
}

//! Durability for maintenance sessions: a write-ahead log, periodic
//! checkpoints, and recovery over an injectable
//! [`DurableStorage`] medium.
//!
//! ## Protocol
//!
//! A durable session keeps two kinds of files in its storage directory,
//! both named by a shared **sequence number**:
//!
//! * `ckpt-<seq>` — a full image of the session (written atomically):
//!   live transactions in tid order as [`PagedStore`] pages, the
//!   watermark + tombstone live-tid view, the maintained large itemsets,
//!   the staged-but-uncommitted backlog, and — when the store is still
//!   tid-ordered — the resident [`VerticalIndex`]. Rules are *not*
//!   stored: they are a pure function of the itemsets and the confidence
//!   threshold, re-derived on recovery.
//! * `wal-<seq>` — the append-only log of everything since `ckpt-<seq>`:
//!   one CRC32-framed [`WalRecord`] per staged batch (written *before*
//!   the batch becomes visible to a commit round) plus a `Commit` /
//!   `Abort` boundary record per round.
//!
//! Checkpoints and WAL segments rotate together: writing `ckpt-<s>`
//! starts a fresh, empty `wal-<s>` (the backlog is embedded in the
//! checkpoint), and older pairs are garbage-collected down to
//! [`DurabilityPolicy::retain_checkpoints`].
//!
//! ## Recovery invariant
//!
//! Recovery loads the newest checkpoint that validates (magic + CRC),
//! replays the WAL tail, and reproduces **exactly the state of every
//! durably-acknowledged commit**: a round whose `Commit` boundary
//! reached storage is replayed bit-for-bit (FUP rounds are deterministic
//! given the arrival order, which the tickets pin); a round that crashed
//! mid-flight is rolled back, with its staged batches re-queued. A torn
//! or corrupt WAL tail is dropped (reported, never a panic) — safe
//! because a `Commit` record always follows its `Stage` records in file
//! order, so dropping a suffix can only un-stage batches, never lose an
//! acknowledged commit. A corrupt checkpoint falls back to the previous
//! one at the cost of a longer replay.
//!
//! ## Fault handling
//!
//! Storage failures are classified by the backend (see
//! [`fup_tidb::FaultKind`]) and handled in three tiers:
//!
//! * **Transient, within budget** — retried in place per the session's
//!   [`RetryPolicy`] (bounded attempts, exponential backoff,
//!   deterministic jitter). An in-place WAL append retry first verifies
//!   the failed attempt left no partial bytes on the segment.
//! * **Transient, budget exhausted** (or a suspect partial append) —
//!   the log enters the **degraded** state: durable operations fail
//!   fast with [`Error::DurabilityDegraded`] until a heal. Healing is
//!   simply the next checkpoint install succeeding: checkpoints
//!   embed the staged backlog and rotate to a fresh WAL segment, so one
//!   atomic install supersedes the suspect tail *and* re-logs every
//!   staged record.
//! * **Permanent** — the log is **poisoned**: every later durable
//!   operation fails with [`Error::Recovery`] until the session is
//!   rebuilt via recovery. The in-memory session may have state the log
//!   no longer reflects, and a half-logged session must never
//!   acknowledge more work.

use crate::error::{BuildError, Error, Result};
use fup_mining::{Itemset, LargeItemsets, VerticalIndex};
use fup_tidb::codec::{read_varint, read_varint64, write_varint, write_varint64};
use fup_tidb::page::PagedStore;
use fup_tidb::wal::{self, WalRecord};
use fup_tidb::{DurableStorage, StagingArea, Tid, Transaction, UpdateBatch};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Magic prefix of every checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"FUPCKPT1";

/// How a durable session trades write latency for recovery work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityPolicy {
    /// Issue storage `sync` barriers for WAL appends (default `true`).
    /// With `false`, a crash may lose the latest records the medium had
    /// not flushed — recovery still works, from an earlier prefix.
    pub fsync: bool,
    /// **Group commit**: sync after this many appended `Stage` records
    /// instead of after every one (default 1 = per-append fsync). With
    /// `n > 1` the fsync moves off the producer's critical path: up to
    /// `n - 1` staged-but-unacknowledged-durable records may be lost by
    /// a power-loss crash (they were never part of a committed round —
    /// `Commit`/`Abort` boundaries *always* sync before returning, so
    /// acknowledged commits keep the per-append guarantee). Must be ≥ 1.
    /// Ignored when `fsync` is `false`.
    pub flush_every_ops: u64,
    /// Group-commit age bound: if the oldest unflushed `Stage` record
    /// has waited at least this long when the next append arrives, sync
    /// then even if the `flush_every_ops` quota is not yet met (default
    /// 2 ms). Checked at append time (and satisfied by every round
    /// boundary, which always syncs) — there is no background flusher
    /// thread.
    pub flush_interval: std::time::Duration,
    /// Write a checkpoint (and rotate the WAL) every this many committed
    /// rounds (default 8). Must be ≥ 1.
    pub checkpoint_every_rounds: u64,
    /// Keep this many most-recent checkpoints, with the WAL segments
    /// reaching back to the oldest retained one (default 2, so a corrupt
    /// newest checkpoint still recovers). Must be ≥ 1.
    pub retain_checkpoints: usize,
    /// Bounded retry for *transient* storage faults (see
    /// [`fup_tidb::FaultKind`]). Exhausting it degrades the log instead
    /// of poisoning it; [`RetryPolicy::none`] restores fail-on-first-blip.
    pub retry: RetryPolicy,
}

impl Default for DurabilityPolicy {
    fn default() -> Self {
        DurabilityPolicy {
            fsync: true,
            flush_every_ops: 1,
            flush_interval: std::time::Duration::from_millis(2),
            checkpoint_every_rounds: 8,
            retain_checkpoints: 2,
            retry: RetryPolicy::default(),
        }
    }
}

impl DurabilityPolicy {
    /// The default policy with group commit: stage-record fsyncs batched
    /// `ops` records at a time, bounded by `interval` of waiting.
    pub fn group_commit(ops: u64, interval: std::time::Duration) -> Self {
        DurabilityPolicy {
            flush_every_ops: ops,
            flush_interval: interval,
            ..Default::default()
        }
    }

    /// Replaces the transient-fault retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Rejects degenerate configurations.
    pub fn validate(&self) -> std::result::Result<(), BuildError> {
        if self.checkpoint_every_rounds == 0 {
            return Err(BuildError::ZeroCheckpointInterval);
        }
        if self.retain_checkpoints == 0 {
            return Err(BuildError::ZeroRetainedCheckpoints);
        }
        if self.flush_every_ops == 0 {
            return Err(BuildError::ZeroFlushOps);
        }
        self.retry.validate()
    }
}

/// Bounded retry with exponential backoff and deterministic jitter, for
/// faults classified [`Transient`](fup_tidb::FaultKind::Transient).
///
/// Delay before retry `r` (1-based) is `base_backoff * 2^(r-1)`, capped
/// at `max_backoff`, then jittered down by up to half so a fleet of
/// retriers never thunders in phase. The jitter is a pure function of
/// `jitter_seed` and the retry number — two runs with the same seed
/// sleep identically, which keeps fault-injection tests deterministic.
///
/// The same type drives client-side admission retries
/// ([`StageHandle::stage_with_retry`](crate::StageHandle::stage_with_retry)),
/// where "transient" means backpressure (`WouldBlock` / `StageTimeout`)
/// or a degraded service rather than a storage blip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (default 4). Must be ≥ 1; a
    /// value of 1 means "never retry".
    pub max_attempts: u32,
    /// Delay before the first retry (default 2 ms).
    pub base_backoff: Duration,
    /// Ceiling on any single delay (default 100 ms). Must be ≥
    /// `base_backoff`.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
            jitter_seed: 0xf00d_5eed,
        }
    }
}

impl RetryPolicy {
    /// No retries at all: one attempt, fail on the first fault.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        }
    }

    /// `attempts` total attempts with the default backoff shape.
    pub fn attempts(attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: attempts,
            ..Default::default()
        }
    }

    /// Replaces the backoff range.
    pub fn backoff(mut self, base: Duration, max: Duration) -> Self {
        self.base_backoff = base;
        self.max_backoff = max;
        self
    }

    /// Replaces the jitter seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Rejects degenerate configurations.
    pub fn validate(&self) -> std::result::Result<(), BuildError> {
        if self.max_attempts == 0 {
            return Err(BuildError::ZeroRetryAttempts);
        }
        if self.base_backoff > self.max_backoff {
            return Err(BuildError::InvertedRetryBackoff);
        }
        Ok(())
    }

    /// The delay before retry number `retry` (1-based; 0 returns zero).
    /// Exponential in the retry number, capped at `max_backoff`, then
    /// jittered deterministically into the upper half of the window.
    pub fn delay(&self, retry: u32) -> Duration {
        if retry == 0 {
            return Duration::ZERO;
        }
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << retry.saturating_sub(1).min(20))
            .min(self.max_backoff);
        let nanos = exp.as_nanos().min(u64::MAX as u128) as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        let jitter = splitmix64(self.jitter_seed ^ u64::from(retry)) % (nanos / 2 + 1);
        Duration::from_nanos(nanos - jitter)
    }

    /// Sleeps for [`delay`](Self::delay) (skipping zero-length sleeps).
    pub(crate) fn pause(&self, retry: u32) {
        let d = self.delay(retry);
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// SplitMix64 — tiny, statistically solid, and dependency-free; used
/// only to decorrelate retry delays, never for anything security-like.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// What [`recover`](crate::MaintainerBuilder::recover) found and did.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint recovery started from.
    pub checkpoint_seq: u64,
    /// Checkpoints that failed validation and were skipped (newest
    /// first) — recovery fell back past them.
    pub corrupt_checkpoints: Vec<u64>,
    /// Committed rounds replayed from the WAL tail.
    pub replayed_rounds: u64,
    /// Staged-but-uncommitted batches re-queued for the next commit
    /// (checkpoint backlog plus un-committed WAL stages).
    pub restaged_batches: u64,
    /// Why the WAL tail was dropped, when it was (a torn or corrupt
    /// frame; everything before it was replayed normally).
    pub wal_tail_dropped: Option<fup_tidb::Error>,
    /// The state version after recovery — equal to the version of the
    /// last durably-acknowledged commit.
    pub version: u64,
}

// ------------------------------------------------------- file naming --

pub(crate) fn wal_name(seq: u64) -> String {
    format!("wal-{seq:08}")
}

pub(crate) fn ckpt_name(seq: u64) -> String {
    format!("ckpt-{seq:08}")
}

fn parse_seq(name: &str, prefix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.parse().ok()
}

// ------------------------------------------------- checkpoint format --

/// A decoded checkpoint: everything needed to rebuild a [`Maintainer`]
/// (`crate::Maintainer`) except the configuration, which the recovering
/// builder supplies.
#[derive(Debug)]
pub(crate) struct CheckpointImage {
    pub seq: u64,
    pub version: u64,
    pub minsup: (u64, u64),
    pub minconf: (u64, u64),
    pub watermark: u64,
    pub next_segment: u32,
    pub tombstones: Vec<Tid>,
    pub live: Vec<(Tid, Transaction)>,
    pub large: LargeItemsets,
    pub backlog: Vec<(u64, UpdateBatch)>,
    pub index: Option<VerticalIndex>,
}

fn corrupt(reason: impl Into<String>, offset: usize) -> fup_tidb::Error {
    fup_tidb::Error::Corrupt {
        reason: reason.into(),
        offset: Some(offset),
    }
}

fn encode_tids(buf: &mut Vec<u8>, tids: &[Tid]) {
    // Ascending, so delta-encoded like WAL ticket lists.
    write_varint64(buf, tids.len() as u64);
    let mut prev = 0u64;
    for (i, &Tid(t)) in tids.iter().enumerate() {
        write_varint64(buf, if i == 0 { t } else { t - prev });
        prev = t;
    }
}

fn decode_tids(buf: &[u8], pos: &mut usize) -> std::result::Result<Vec<Tid>, fup_tidb::Error> {
    let n = read_varint64(buf, pos)? as usize;
    let mut out = Vec::with_capacity(n.min(buf.len()));
    let mut prev = 0u64;
    for i in 0..n {
        let at = *pos;
        let v = read_varint64(buf, pos)?;
        let t = if i == 0 {
            v
        } else {
            if v == 0 {
                return Err(corrupt("duplicate tid in checkpoint list", at));
            }
            prev.checked_add(v)
                .ok_or_else(|| corrupt("tid delta overflows u64", at))?
        };
        out.push(Tid(t));
        prev = t;
    }
    Ok(out)
}

/// Serialises a full checkpoint file (magic + CRC + body). `live` must
/// be in ascending tid order. Fails only if a transaction cannot fit a
/// storage page.
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_checkpoint(
    seq: u64,
    version: u64,
    minsup: (u64, u64),
    minconf: (u64, u64),
    watermark: u64,
    next_segment: u32,
    tombstones: &[Tid],
    live: &[(Tid, Transaction)],
    large: &LargeItemsets,
    backlog: &[(u64, UpdateBatch)],
    index: Option<&VerticalIndex>,
) -> std::result::Result<Vec<u8>, fup_tidb::Error> {
    let mut body = Vec::new();
    write_varint64(&mut body, seq);
    write_varint64(&mut body, version);
    write_varint64(&mut body, minsup.0);
    write_varint64(&mut body, minsup.1);
    write_varint64(&mut body, minconf.0);
    write_varint64(&mut body, minconf.1);
    write_varint64(&mut body, watermark);
    write_varint(&mut body, next_segment);
    encode_tids(&mut body, tombstones);

    // Live transactions ride in the paged storage format — the same 4 KiB
    // page layout the scan-cost model charges — with a parallel tid list.
    let tids: Vec<Tid> = live.iter().map(|&(tid, _)| tid).collect();
    let store = PagedStore::from_transactions(live.iter().map(|(_, t)| t))?;
    encode_tids(&mut body, &tids);
    write_varint64(&mut body, store.page_size() as u64);
    write_varint64(&mut body, store.num_pages() as u64);
    for p in 0..store.num_pages() {
        let page = store.page_bytes(p);
        write_varint64(&mut body, page.len() as u64);
        body.extend_from_slice(page);
    }

    // Large itemsets with exact supports, level by level in sorted order
    // so identical states encode identically.
    write_varint64(&mut body, large.num_transactions());
    write_varint64(&mut body, large.len() as u64);
    for k in 1..=large.max_size() {
        for (itemset, support) in large.level_sorted(k) {
            write_varint64(&mut body, itemset.items().len() as u64);
            for &item in itemset.items() {
                write_varint(&mut body, item.raw());
            }
            write_varint64(&mut body, support);
        }
    }

    // Staged-but-uncommitted backlog, so the fresh WAL starts empty.
    write_varint64(&mut body, backlog.len() as u64);
    for (ticket, batch) in backlog {
        write_varint64(&mut body, *ticket);
        wal::encode_batch(&mut body, batch);
    }

    match index {
        None => body.push(0),
        Some(idx) => {
            body.push(1);
            idx.encode(&mut body);
        }
    }

    let mut out = Vec::with_capacity(CHECKPOINT_MAGIC.len() + 4 + body.len());
    out.extend_from_slice(CHECKPOINT_MAGIC);
    out.extend_from_slice(&wal::crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Decodes and fully validates a checkpoint file. Any structural damage
/// — bad magic, CRC mismatch, truncation, out-of-range references —
/// yields a typed [`fup_tidb::Error::Corrupt`]; this function never
/// panics on untrusted bytes.
pub(crate) fn decode_checkpoint(
    bytes: &[u8],
) -> std::result::Result<CheckpointImage, fup_tidb::Error> {
    let header = CHECKPOINT_MAGIC.len() + 4;
    if bytes.len() < header || &bytes[..CHECKPOINT_MAGIC.len()] != CHECKPOINT_MAGIC {
        return Err(corrupt("missing checkpoint magic", 0));
    }
    let crc = u32::from_le_bytes(
        bytes[CHECKPOINT_MAGIC.len()..header]
            .try_into()
            .expect("4 bytes"),
    );
    let body = &bytes[header..];
    if wal::crc32(body) != crc {
        return Err(corrupt("checkpoint CRC mismatch", CHECKPOINT_MAGIC.len()));
    }

    let mut pos = 0usize;
    let seq = read_varint64(body, &mut pos)?;
    let version = read_varint64(body, &mut pos)?;
    let minsup = (
        read_varint64(body, &mut pos)?,
        read_varint64(body, &mut pos)?,
    );
    let minconf = (
        read_varint64(body, &mut pos)?,
        read_varint64(body, &mut pos)?,
    );
    let watermark = read_varint64(body, &mut pos)?;
    let next_segment = read_varint(body, &mut pos)?;
    let tombstones = decode_tids(body, &mut pos)?;

    let tids = decode_tids(body, &mut pos)?;
    let page_size = read_varint64(body, &mut pos)? as usize;
    if page_size == 0 || page_size > (16 << 20) {
        return Err(corrupt("implausible checkpoint page size", pos));
    }
    let num_pages = read_varint64(body, &mut pos)? as usize;
    let mut pages = Vec::with_capacity(num_pages.min(1 << 20));
    for _ in 0..num_pages {
        let at = pos;
        let len = read_varint64(body, &mut pos)? as usize;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= body.len())
            .ok_or_else(|| corrupt("checkpoint page truncated", at))?;
        pages.push(body[pos..end].to_vec());
        pos = end;
    }
    let store = PagedStore::from_encoded_pages(page_size, pages)?;
    let transactions = store.to_transactions()?;
    if transactions.len() != tids.len() {
        return Err(corrupt(
            format!(
                "checkpoint holds {} transactions but {} tids",
                transactions.len(),
                tids.len()
            ),
            pos,
        ));
    }
    for &Tid(t) in &tids {
        if t >= watermark {
            return Err(corrupt("live tid at or above the watermark", pos));
        }
    }
    let live: Vec<(Tid, Transaction)> = tids.into_iter().zip(transactions).collect();

    let baseline = read_varint64(body, &mut pos)?;
    let num_large = read_varint64(body, &mut pos)? as usize;
    let mut large = LargeItemsets::new(baseline);
    for _ in 0..num_large {
        let at = pos;
        let len = read_varint64(body, &mut pos)? as usize;
        if len == 0 || len > 100_000 {
            return Err(corrupt("implausible itemset length", at));
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(read_varint(body, &mut pos)?);
        }
        let itemset = Itemset::from_items(items);
        if itemset.items().len() != len {
            return Err(corrupt("itemset with duplicate items", at));
        }
        let support = read_varint64(body, &mut pos)?;
        if large.support(&itemset).is_some() {
            return Err(corrupt("duplicate itemset in checkpoint", at));
        }
        large.insert(itemset, support);
    }
    if large.len() != num_large {
        return Err(corrupt("itemset count mismatch", pos));
    }

    let num_backlog = read_varint64(body, &mut pos)? as usize;
    let mut backlog = Vec::with_capacity(num_backlog.min(1 << 20));
    let mut prev_ticket: Option<u64> = None;
    for _ in 0..num_backlog {
        let at = pos;
        let ticket = read_varint64(body, &mut pos)?;
        if prev_ticket.is_some_and(|p| ticket <= p) {
            return Err(corrupt("backlog tickets out of order", at));
        }
        prev_ticket = Some(ticket);
        let batch = wal::decode_batch(body, &mut pos)?;
        backlog.push((ticket, batch));
    }

    let index = match body.get(pos) {
        Some(0) => {
            pos += 1;
            None
        }
        Some(1) => {
            pos += 1;
            let idx = VerticalIndex::decode(body, &mut pos)?;
            if idx.num_transactions() != live.len() as u64 {
                return Err(corrupt("checkpoint index covers a different store", pos));
            }
            Some(idx)
        }
        Some(_) => return Err(corrupt("bad index flag", pos)),
        None => return Err(corrupt("truncated before index flag", pos)),
    };
    if pos != body.len() {
        return Err(corrupt("trailing bytes after checkpoint", pos));
    }

    Ok(CheckpointImage {
        seq,
        version,
        minsup,
        minconf,
        watermark,
        next_segment,
        tombstones,
        live,
        large,
        backlog,
        index,
    })
}

// ----------------------------------------------------- the WAL handle --

/// Health of a session's durable log, exposed through
/// [`Maintainer::durability_state`](crate::Maintainer::durability_state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogState {
    /// Durable operations are being accepted (and transparently retried
    /// through transient blips within the retry budget).
    Healthy,
    /// A transient fault outlived its retry budget (or an append retry
    /// found a suspect partial write). Durable operations fail fast with
    /// [`Error::DurabilityDegraded`]; a successful checkpoint install
    /// heals the log back to [`Healthy`](LogState::Healthy).
    Degraded,
    /// A permanent fault was observed. Terminal: every durable operation
    /// fails with [`Error::Recovery`] until the session is rebuilt via
    /// recovery.
    Poisoned,
}

const STATE_HEALTHY: u8 = 0;
const STATE_DEGRADED: u8 = 1;
const STATE_POISONED: u8 = 2;

#[derive(Debug)]
struct LogInner {
    /// Sequence number of the active `ckpt`/`wal` pair.
    seq: u64,
    /// Committed rounds since the last checkpoint.
    rounds_since_ckpt: u64,
    /// `Stage` records appended since the last sync barrier (group
    /// commit accounting; always 0 when `flush_every_ops` is 1).
    unflushed: u64,
    /// When the oldest unflushed record was appended.
    oldest_unflushed: Option<std::time::Instant>,
    /// Byte length of the active WAL segment as this session believes
    /// it to be, resolved lazily from storage *before* the first append
    /// touches the segment. An in-place append retry is sound only when
    /// the on-storage length still matches this — a mismatch means the
    /// failed attempt tore bytes onto the segment, and appending after
    /// a torn frame would bury every later record at replay.
    wal_len: Option<u64>,
}

/// The session's handle on its durable storage: appends WAL records (in
/// ticket order — the append lock spans ticket draw and write), installs
/// checkpoints, and rotates/garbage-collects file pairs.
///
/// Storage failures are tiered (see the [module docs](self)): transient
/// faults are retried per [`DurabilityPolicy::retry`]; exhausting the
/// budget **degrades** the log (fail fast, heal by installing a fresh
/// checkpoint); a permanent fault **poisons** it — the in-memory session
/// may have state the log no longer reflects, so every later durable
/// operation fails with [`Error::Recovery`] until the session is rebuilt
/// via recovery.
#[derive(Debug)]
pub(crate) struct DurableLog {
    storage: Arc<dyn DurableStorage>,
    policy: DurabilityPolicy,
    state: AtomicU8,
    /// Transient-fault retries performed over the log's lifetime
    /// (successful or not) — a health gauge, not control state.
    retries: AtomicU64,
    inner: Mutex<LogInner>,
}

impl DurableLog {
    pub(crate) fn new(
        storage: Arc<dyn DurableStorage>,
        policy: DurabilityPolicy,
        seq: u64,
    ) -> Self {
        DurableLog {
            storage,
            policy,
            state: AtomicU8::new(STATE_HEALTHY),
            retries: AtomicU64::new(0),
            inner: Mutex::new(LogInner {
                seq,
                rounds_since_ckpt: 0,
                unflushed: 0,
                oldest_unflushed: None,
                wal_len: None,
            }),
        }
    }

    pub(crate) fn state(&self) -> LogState {
        match self.state.load(Ordering::Acquire) {
            STATE_HEALTHY => LogState::Healthy,
            STATE_DEGRADED => LogState::Degraded,
            _ => LogState::Poisoned,
        }
    }

    pub(crate) fn is_poisoned(&self) -> bool {
        self.state() == LogState::Poisoned
    }

    pub(crate) fn transient_retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    pub(crate) fn policy(&self) -> &DurabilityPolicy {
        &self.policy
    }

    pub(crate) fn storage(&self) -> &Arc<dyn DurableStorage> {
        &self.storage
    }

    fn poison(&self) {
        self.state.store(STATE_POISONED, Ordering::Release);
    }

    fn degrade(&self) {
        // Never downgrade a poisoned log.
        let _ = self.state.compare_exchange(
            STATE_HEALTHY,
            STATE_DEGRADED,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Routes a storage failure to its tier and returns it wrapped.
    fn fail(&self, e: fup_tidb::Error) -> Error {
        if e.is_transient() {
            self.degrade();
        } else {
            self.poison();
        }
        Error::Store(e)
    }

    fn check_usable(&self) -> Result<()> {
        match self.state() {
            LogState::Healthy => Ok(()),
            LogState::Degraded => Err(Error::DurabilityDegraded),
            LogState::Poisoned => Err(Error::Recovery {
                reason: "the durable log is poisoned by an earlier storage failure; \
                         discard this session and recover from storage"
                    .into(),
            }),
        }
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, LogInner> {
        // A panic while holding the lock (a killed committer) leaves
        // only counters and the tracked segment length behind; the
        // tracked length is re-verified against storage before any
        // in-place retry, so recovering the guard is sound.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs one effect-free storage operation (sync, atomic write, list,
    /// remove — anything where a failed attempt leaves nothing behind)
    /// through the transient-retry budget.
    fn retrying<T>(&self, mut op: impl FnMut() -> fup_tidb::Result<T>) -> fup_tidb::Result<T> {
        let mut retry = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && retry + 1 < self.policy.retry.max_attempts => {
                    retry += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    self.policy.retry.pause(retry);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Appends `bytes` to the active WAL segment and issues the sync
    /// barrier per policy. Caller holds the inner lock. `barrier` forces
    /// the sync regardless of group-commit accounting — round boundaries
    /// must be durable before they are acknowledged.
    ///
    /// A transient append failure is retried in place only after
    /// verifying the on-storage segment length still matches the tracked
    /// one (no partial bytes landed); on any doubt the error propagates
    /// and the caller degrades the log — the degraded-mode heal rotates
    /// to a fresh checkpoint instead of appending after a suspect tail.
    fn append_locked(
        &self,
        inner: &mut LogInner,
        bytes: &[u8],
        barrier: bool,
    ) -> fup_tidb::Result<()> {
        let file = wal_name(inner.seq);
        // Resolve the tracked length *before* the first attempt: reading
        // it only after a failure would adopt that failure's torn bytes
        // as the baseline and defeat the check.
        if inner.wal_len.is_none() {
            if let Ok(existing) = self.storage.read(&file) {
                inner.wal_len = Some(existing.map_or(0, |b| b.len() as u64));
            }
        }
        let mut retry = 0u32;
        loop {
            match self.storage.append(&file, bytes) {
                Ok(()) => {
                    if let Some(len) = inner.wal_len.as_mut() {
                        *len += bytes.len() as u64;
                    }
                    break;
                }
                Err(e) if e.is_transient() && retry + 1 < self.policy.retry.max_attempts => {
                    let on_storage = match self.storage.read(&file) {
                        Ok(existing) => existing.map_or(0, |b| b.len() as u64),
                        Err(_) => return Err(e),
                    };
                    if inner.wal_len != Some(on_storage) {
                        return Err(e);
                    }
                    retry += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    self.policy.retry.pause(retry);
                }
                Err(e) => return Err(e),
            }
        }
        if !self.policy.fsync {
            return Ok(());
        }
        inner.unflushed += 1;
        let oldest = *inner
            .oldest_unflushed
            .get_or_insert_with(std::time::Instant::now);
        let due = barrier
            || inner.unflushed >= self.policy.flush_every_ops
            || oldest.elapsed() >= self.policy.flush_interval;
        if due {
            self.retrying(|| self.storage.sync(&file))?;
            inner.unflushed = 0;
            inner.oldest_unflushed = None;
        }
        Ok(())
    }

    /// The durable stage path: reserve staging capacity, claim the
    /// deletes, draw a ticket, make the record durable, and only then
    /// admit the batch. A storage failure releases the claims and the
    /// capacity (the batch was never visible) and degrades or poisons
    /// the log per the fault kind — the ticket-number gap it leaves is
    /// harmless, commits name their tickets explicitly.
    ///
    /// With group commit ([`DurabilityPolicy::flush_every_ops`] > 1) the
    /// append returns before the record is fsynced; a power-loss crash
    /// may drop it, in which case recovery simply never re-stages it —
    /// the same contract as `fsync: false`, but bounded to the group.
    pub(crate) fn log_stage(
        &self,
        staging: &StagingArea,
        batch: UpdateBatch,
        admission: fup_tidb::Admission,
    ) -> Result<u64> {
        self.check_usable()?;
        let ops = batch.num_ops();
        staging.reserve(ops, admission).map_err(Error::Store)?;
        if let Err(e) = staging.claim(&batch.deletes) {
            staging.release_capacity(ops);
            return Err(Error::Store(e));
        }
        let mut inner = self.lock_inner();
        let ticket = staging.take_ticket();
        let record = WalRecord::Stage {
            ticket,
            batch: batch.clone(),
        };
        match self.append_locked(&mut inner, &record.to_framed_bytes(), false) {
            Ok(()) => {
                // Admission must complete while the log lock is still
                // held: a checkpoint holds the same lock across encoding
                // its backlog and rotating the WAL, so a staged batch is
                // either admitted before the rotation (embedded in the
                // checkpoint) or appended after it (recorded in the fresh
                // segment) — never a record stranded in a superseded
                // segment with no matching backlog entry.
                staging.admit_with_ticket(ticket, batch);
                drop(inner);
                Ok(ticket)
            }
            Err(e) => {
                drop(inner);
                staging.release_deletes(batch.deletes.iter().copied());
                staging.release_capacity(ops);
                Err(self.fail(e))
            }
        }
    }

    /// Appends a `Commit`/`Abort` boundary record — always a sync
    /// barrier (group commit never delays a boundary: an acknowledged
    /// commit must survive any crash). Degrades or poisons on failure
    /// per the fault kind.
    pub(crate) fn log_boundary(&self, record: &WalRecord) -> Result<()> {
        self.check_usable()?;
        let mut inner = self.lock_inner();
        match self.append_locked(&mut inner, &record.to_framed_bytes(), true) {
            Ok(()) => Ok(()),
            Err(e) => Err(self.fail(e)),
        }
    }

    /// Counts one committed round against the checkpoint cadence,
    /// returning `true` when a checkpoint is due.
    pub(crate) fn note_round(&self) -> bool {
        let mut inner = self.lock_inner();
        inner.rounds_since_ckpt += 1;
        inner.rounds_since_ckpt >= self.policy.checkpoint_every_rounds
    }

    /// The sequence number the next checkpoint will use.
    #[cfg(test)]
    pub(crate) fn next_seq(&self) -> u64 {
        self.lock_inner().seq + 1
    }

    /// Atomically installs checkpoint `seq` (already encoded), starts its
    /// fresh WAL segment, and garbage-collects pairs beyond the retention
    /// policy. Degrades or poisons on failure per the fault kind.
    ///
    /// This is also the **heal** path: it is allowed while the log is
    /// degraded, because a checkpoint embeds the staged backlog and the
    /// rotation starts a fresh WAL segment — one atomic install
    /// supersedes the suspect tail and re-logs every staged record, so
    /// nothing durably acknowledged depends on the bytes the degraded
    /// segment may or may not hold. Full success flips the log back to
    /// [`LogState::Healthy`].
    pub(crate) fn install_checkpoint(&self, seq: u64, bytes: &[u8]) -> Result<()> {
        if self.is_poisoned() {
            self.check_usable()?;
        }
        let mut inner = self.lock_inner();
        self.install_locked(&mut inner, seq, bytes)
    }

    /// Encodes (via `encode`, handed the sequence number) and installs
    /// the next checkpoint as **one critical section** on the log lock.
    /// Concurrent [`log_stage`](Self::log_stage) calls append and admit
    /// under the same lock, so the encoded backlog and the superseded
    /// WAL segment can never disagree about a staged batch: every ticket
    /// a post-rotation `Commit` references is either embedded in this
    /// checkpoint or staged in the fresh segment.
    pub(crate) fn checkpoint_with(
        &self,
        encode: impl FnOnce(u64) -> Result<Vec<u8>>,
    ) -> Result<u64> {
        if self.is_poisoned() {
            self.check_usable()?;
        }
        let mut inner = self.lock_inner();
        let seq = inner.seq + 1;
        let bytes = encode(seq)?;
        self.install_locked(&mut inner, seq, &bytes)?;
        Ok(seq)
    }

    fn install_locked(
        &self,
        inner: &mut std::sync::MutexGuard<'_, LogInner>,
        seq: u64,
        bytes: &[u8],
    ) -> Result<()> {
        let result: fup_tidb::Result<()> = (|| {
            self.retrying(|| self.storage.write_atomic(&ckpt_name(seq), bytes))?;
            // An empty append materialises the fresh segment so recovery
            // sees the rotation even before the first record.
            self.retrying(|| self.storage.append(&wal_name(seq), &[]))?;
            if self.policy.fsync {
                self.retrying(|| self.storage.sync(&wal_name(seq)))?;
            }
            Ok(())
        })();
        if let Err(e) = result {
            return Err(self.fail(e));
        }
        inner.seq = seq;
        inner.rounds_since_ckpt = 0;
        // The old segment's unflushed records are superseded: the
        // checkpoint embeds the backlog and the fresh segment is synced.
        inner.unflushed = 0;
        inner.oldest_unflushed = None;
        // The fresh segment holds exactly the empty append.
        inner.wal_len = Some(0);
        // Retention: best-effort removal of superseded pairs. A failure
        // here loses nothing (old files are only ever extra), but the
        // storage is evidently unwell, so degrade/poison to stay
        // conservative.
        let mut ckpts: Vec<u64> = match self.retrying(|| self.storage.list()) {
            Ok(names) => names.iter().filter_map(|n| parse_seq(n, "ckpt-")).collect(),
            Err(e) => return Err(self.fail(e)),
        };
        ckpts.sort_unstable();
        if ckpts.len() > self.policy.retain_checkpoints {
            let cutoff = ckpts[ckpts.len() - self.policy.retain_checkpoints];
            let names = self
                .retrying(|| self.storage.list())
                .map_err(Error::Store)?;
            for name in names {
                let stale = parse_seq(&name, "ckpt-").is_some_and(|s| s < cutoff)
                    || parse_seq(&name, "wal-").is_some_and(|s| s < cutoff);
                if stale {
                    if let Err(e) = self.retrying(|| self.storage.remove(&name)) {
                        return Err(self.fail(e));
                    }
                }
            }
        }
        // The rotation is durable and complete: a degraded log is healed.
        let _ = self.state.compare_exchange(
            STATE_DEGRADED,
            STATE_HEALTHY,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        Ok(())
    }
}

// ------------------------------------------------------- log loading --

/// Everything recovery reads from storage before rebuilding a session.
#[derive(Debug)]
pub(crate) struct RecoveredLog {
    pub image: CheckpointImage,
    pub corrupt_checkpoints: Vec<u64>,
    /// WAL records from every segment at or after the chosen checkpoint,
    /// concatenated in segment order.
    pub replay: Vec<WalRecord>,
    pub wal_tail_dropped: Option<fup_tidb::Error>,
    /// Highest sequence number seen anywhere — the recovery checkpoint
    /// goes at `max_seq + 1` so it can never collide with damaged files.
    pub max_seq: u64,
}

/// Scans the storage directory, picks the newest checkpoint that
/// validates, and gathers the WAL records to replay on top of it.
pub(crate) fn load_latest(storage: &dyn DurableStorage) -> Result<RecoveredLog> {
    let names = storage.list().map_err(Error::Store)?;
    let mut ckpt_seqs: Vec<u64> = names.iter().filter_map(|n| parse_seq(n, "ckpt-")).collect();
    let wal_seqs: Vec<u64> = names.iter().filter_map(|n| parse_seq(n, "wal-")).collect();
    if ckpt_seqs.is_empty() {
        return Err(Error::Recovery {
            reason: "no checkpoint found in storage (not a durable session directory, \
                     or its checkpoints were all removed)"
                .into(),
        });
    }
    ckpt_seqs.sort_unstable_by(|a, b| b.cmp(a));
    let max_seq = ckpt_seqs
        .iter()
        .chain(wal_seqs.iter())
        .copied()
        .max()
        .unwrap_or(0);

    let mut corrupt_checkpoints = Vec::new();
    let mut image = None;
    for &seq in &ckpt_seqs {
        let bytes = match storage.read(&ckpt_name(seq)) {
            Ok(Some(b)) => b,
            Ok(None) => {
                corrupt_checkpoints.push(seq);
                continue;
            }
            Err(e) => return Err(Error::Store(e)),
        };
        match decode_checkpoint(&bytes) {
            Ok(img) if img.seq == seq => {
                image = Some(img);
                break;
            }
            _ => corrupt_checkpoints.push(seq),
        }
    }
    let Some(image) = image else {
        return Err(Error::Recovery {
            reason: format!(
                "every checkpoint failed validation ({} candidate(s)); \
                 the storage is unrecoverable",
                corrupt_checkpoints.len()
            ),
        });
    };

    // Replay the WAL segments from the chosen checkpoint forward. A bad
    // tail ends the trustworthy suffix: stop there and drop later
    // segments too (they describe state reached through the dropped
    // records).
    let mut replay = Vec::new();
    let mut wal_tail_dropped = None;
    let mut seqs: Vec<u64> = wal_seqs.into_iter().filter(|&s| s >= image.seq).collect();
    seqs.sort_unstable();
    for seq in seqs {
        let bytes = match storage.read(&wal_name(seq)) {
            Ok(Some(b)) => b,
            Ok(None) => continue,
            Err(e) => return Err(Error::Store(e)),
        };
        let scan = wal::read_records(&bytes);
        replay.extend(scan.records);
        if let Some(e) = scan.tail_error {
            wal_tail_dropped = Some(e);
            break;
        }
    }

    Ok(RecoveredLog {
        image,
        corrupt_checkpoints,
        replay,
        wal_tail_dropped,
        max_seq,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fup_tidb::{Admission, FlakyStorage, MemStorage, OpClass};

    fn tx(items: &[u32]) -> Transaction {
        Transaction::from_items(items.iter().copied())
    }

    fn sample_image_bytes() -> Vec<u8> {
        let mut large = LargeItemsets::new(3);
        large.insert(Itemset::from_items([1u32]), 3);
        large.insert(Itemset::from_items([2u32]), 2);
        large.insert(Itemset::from_items([1u32, 2]), 2);
        let live = vec![
            (Tid(0), tx(&[1, 2])),
            (Tid(1), tx(&[1, 2, 3])),
            (Tid(3), tx(&[1])),
        ];
        let backlog = vec![
            (4u64, UpdateBatch::insert_only(vec![tx(&[9])])),
            (
                7u64,
                UpdateBatch {
                    inserts: vec![],
                    deletes: vec![Tid(1)],
                },
            ),
        ];
        encode_checkpoint(
            5,
            12,
            (40, 100),
            (60, 100),
            4,
            2,
            &[Tid(2)],
            &live,
            &large,
            &backlog,
            None,
        )
        .unwrap()
    }

    #[test]
    fn checkpoint_roundtrips() {
        let bytes = sample_image_bytes();
        let img = decode_checkpoint(&bytes).unwrap();
        assert_eq!(img.seq, 5);
        assert_eq!(img.version, 12);
        assert_eq!(img.minsup, (40, 100));
        assert_eq!(img.minconf, (60, 100));
        assert_eq!(img.watermark, 4);
        assert_eq!(img.next_segment, 2);
        assert_eq!(img.tombstones, vec![Tid(2)]);
        assert_eq!(img.live.len(), 3);
        assert_eq!(img.live[1], (Tid(1), tx(&[1, 2, 3])));
        assert_eq!(img.large.len(), 3);
        assert_eq!(img.large.support(&Itemset::from_items([1u32, 2])), Some(2));
        assert_eq!(img.backlog.len(), 2);
        assert_eq!(img.backlog[1].0, 7);
        assert_eq!(img.backlog[1].1.deletes, vec![Tid(1)]);
        assert!(img.index.is_none());
    }

    #[test]
    fn checkpoint_rejects_any_single_byte_flip_or_truncation() {
        let bytes = sample_image_bytes();
        for len in 0..bytes.len() {
            assert!(
                decode_checkpoint(&bytes[..len]).is_err(),
                "truncation at {len} must be rejected"
            );
        }
        for at in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x01;
            assert!(
                decode_checkpoint(&bad).is_err(),
                "byte flip at {at} must be rejected (CRC covers the body)"
            );
        }
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let large = LargeItemsets::new(0);
        let bytes =
            encode_checkpoint(0, 0, (1, 2), (1, 2), 0, 0, &[], &[], &large, &[], None).unwrap();
        let img = decode_checkpoint(&bytes).unwrap();
        assert_eq!(img.live.len(), 0);
        assert_eq!(img.large.len(), 0);
        assert_eq!(img.watermark, 0);
    }

    #[test]
    fn file_names_sort_with_their_sequence_numbers() {
        assert_eq!(wal_name(7), "wal-00000007");
        assert_eq!(ckpt_name(123), "ckpt-00000123");
        assert!(wal_name(9) < wal_name(10));
        assert_eq!(parse_seq("ckpt-00000123", "ckpt-"), Some(123));
        assert_eq!(parse_seq("ckpt-00000123.tmp", "ckpt-"), None);
        assert_eq!(parse_seq("wal-00000001", "ckpt-"), None);
    }

    #[test]
    fn load_latest_requires_a_checkpoint() {
        let storage = MemStorage::new();
        let err = load_latest(&storage).unwrap_err();
        assert!(matches!(err, Error::Recovery { .. }));
    }

    #[test]
    fn load_latest_falls_back_past_a_corrupt_checkpoint() {
        let storage = MemStorage::new();
        let large = LargeItemsets::new(1);
        let good = encode_checkpoint(
            0,
            0,
            (1, 2),
            (1, 2),
            1,
            0,
            &[],
            &[(Tid(0), tx(&[1]))],
            &large,
            &[],
            None,
        )
        .unwrap();
        storage.write_atomic(&ckpt_name(0), &good).unwrap();
        storage
            .write_atomic(&ckpt_name(1), b"FUPCKPT1garbage")
            .unwrap();
        // A WAL segment for the good checkpoint and one for the bad.
        let rec = WalRecord::Commit {
            version: 1,
            tickets: vec![],
        };
        storage
            .append(&wal_name(0), &rec.to_framed_bytes())
            .unwrap();
        let recovered = load_latest(&storage).unwrap();
        assert_eq!(recovered.image.seq, 0);
        assert_eq!(recovered.corrupt_checkpoints, vec![1]);
        assert_eq!(recovered.replay.len(), 1);
        assert_eq!(recovered.max_seq, 1);
        assert!(recovered.wal_tail_dropped.is_none());
    }

    #[test]
    fn load_latest_drops_a_torn_tail_with_a_typed_error() {
        let storage = MemStorage::new();
        let large = LargeItemsets::new(0);
        let ckpt =
            encode_checkpoint(0, 0, (1, 2), (1, 2), 0, 0, &[], &[], &large, &[], None).unwrap();
        storage.write_atomic(&ckpt_name(0), &ckpt).unwrap();
        let mut wal_bytes = WalRecord::Stage {
            ticket: 0,
            batch: UpdateBatch::insert_only(vec![tx(&[1])]),
        }
        .to_framed_bytes();
        let full = WalRecord::Commit {
            version: 1,
            tickets: vec![0],
        }
        .to_framed_bytes();
        wal_bytes.extend_from_slice(&full[..full.len() - 3]); // torn commit
        storage.append(&wal_name(0), &wal_bytes).unwrap();
        let recovered = load_latest(&storage).unwrap();
        assert_eq!(recovered.replay.len(), 1, "valid prefix survives");
        assert!(matches!(
            recovered.wal_tail_dropped,
            Some(fup_tidb::Error::Corrupt { .. })
        ));
    }

    #[test]
    fn durability_policy_validates() {
        DurabilityPolicy::default().validate().unwrap();
        let bad = DurabilityPolicy {
            checkpoint_every_rounds: 0,
            ..Default::default()
        };
        assert_eq!(
            bad.validate().unwrap_err(),
            BuildError::ZeroCheckpointInterval
        );
        let bad = DurabilityPolicy {
            retain_checkpoints: 0,
            ..Default::default()
        };
        assert_eq!(
            bad.validate().unwrap_err(),
            BuildError::ZeroRetainedCheckpoints
        );
        let bad = DurabilityPolicy {
            flush_every_ops: 0,
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err(), BuildError::ZeroFlushOps);
        DurabilityPolicy::group_commit(8, std::time::Duration::from_millis(5))
            .validate()
            .unwrap();
        let bad = DurabilityPolicy::default().with_retry(RetryPolicy::attempts(0));
        assert_eq!(bad.validate().unwrap_err(), BuildError::ZeroRetryAttempts);
        let bad = DurabilityPolicy::default().with_retry(
            RetryPolicy::default().backoff(Duration::from_secs(1), Duration::from_millis(1)),
        );
        assert_eq!(
            bad.validate().unwrap_err(),
            BuildError::InvertedRetryBackoff
        );
    }

    #[test]
    fn retry_delays_are_bounded_exponential_and_deterministic() {
        let policy = RetryPolicy::default()
            .backoff(Duration::from_millis(2), Duration::from_millis(100))
            .seeded(42);
        assert_eq!(policy.delay(0), Duration::ZERO);
        for r in 1..=16 {
            let exp = Duration::from_millis(2)
                .saturating_mul(1 << (r - 1).min(20))
                .min(Duration::from_millis(100));
            let d = policy.delay(r);
            assert!(d <= exp, "retry {r}: {d:?} over the cap {exp:?}");
            assert!(d >= exp / 2, "retry {r}: {d:?} jittered below half");
            assert_eq!(d, policy.delay(r), "same seed, same delay");
        }
        assert_ne!(
            policy.delay(3),
            policy.seeded(43).delay(3),
            "different seeds decorrelate"
        );
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn group_commit_batches_stage_fsyncs() {
        // A generous interval isolates the ops quota: 4 staged records
        // per sync barrier, so three appends buffer and the fourth pays
        // for all of them.
        let mem = Arc::new(MemStorage::new());
        let storage: Arc<dyn DurableStorage> = mem.clone();
        let log = DurableLog::new(
            storage,
            DurabilityPolicy::group_commit(4, std::time::Duration::from_secs(3600)),
            0,
        );
        let staging = StagingArea::default();
        for i in 0..3u32 {
            log.log_stage(
                &staging,
                UpdateBatch::insert_only(vec![tx(&[i + 1])]),
                Admission::Try,
            )
            .unwrap();
        }
        assert_eq!(mem.sync_calls(), 0, "under quota: no barrier yet");
        log.log_stage(
            &staging,
            UpdateBatch::insert_only(vec![tx(&[9])]),
            Admission::Try,
        )
        .unwrap();
        assert_eq!(mem.sync_calls(), 1, "fourth record triggers the barrier");
        // The synced image holds all four records, not just the last.
        let image = mem.synced_files();
        let records = wal::read_records(&image[&wal_name(0)]).records;
        assert_eq!(records.len(), 4);
    }

    #[test]
    fn group_commit_interval_bound_forces_the_sync() {
        // A zero age bound makes every append overdue regardless of the
        // huge ops quota — the interval knob alone bounds the window.
        let mem = Arc::new(MemStorage::new());
        let storage: Arc<dyn DurableStorage> = mem.clone();
        let log = DurableLog::new(
            storage,
            DurabilityPolicy::group_commit(1_000_000, std::time::Duration::ZERO),
            0,
        );
        let staging = StagingArea::default();
        log.log_stage(
            &staging,
            UpdateBatch::insert_only(vec![tx(&[1])]),
            Admission::Try,
        )
        .unwrap();
        assert_eq!(mem.sync_calls(), 1);
    }

    #[test]
    fn boundaries_always_sync_under_group_commit() {
        // One staged record sits inside an open group; the Commit
        // boundary must flush it and itself — an acknowledged round
        // keeps the per-append durability guarantee.
        let mem = Arc::new(MemStorage::new());
        let storage: Arc<dyn DurableStorage> = mem.clone();
        let log = DurableLog::new(
            storage,
            DurabilityPolicy::group_commit(64, std::time::Duration::from_secs(3600)),
            0,
        );
        let staging = StagingArea::default();
        let ticket = log
            .log_stage(
                &staging,
                UpdateBatch::insert_only(vec![tx(&[1])]),
                Admission::Try,
            )
            .unwrap();
        assert_eq!(mem.sync_calls(), 0, "the stage record waits in the group");
        log.log_boundary(&WalRecord::Commit {
            version: 1,
            tickets: vec![ticket],
        })
        .unwrap();
        assert_eq!(
            mem.sync_calls(),
            1,
            "the boundary is an unconditional barrier"
        );
        let image = mem.synced_files();
        let records = wal::read_records(&image[&wal_name(0)]).records;
        assert_eq!(records.len(), 2, "the barrier flushed the whole group");
    }

    #[test]
    fn install_checkpoint_rotates_and_retains() {
        let storage: Arc<dyn DurableStorage> = Arc::new(MemStorage::new());
        let log = DurableLog::new(
            Arc::clone(&storage),
            DurabilityPolicy {
                retain_checkpoints: 2,
                ..Default::default()
            },
            0,
        );
        let large = LargeItemsets::new(0);
        let ckpt = |seq| {
            encode_checkpoint(seq, 0, (1, 2), (1, 2), 0, 0, &[], &[], &large, &[], None).unwrap()
        };
        log.install_checkpoint(0, &ckpt(0)).unwrap();
        log.log_boundary(&WalRecord::Commit {
            version: 1,
            tickets: vec![],
        })
        .unwrap();
        log.install_checkpoint(1, &ckpt(1)).unwrap();
        log.install_checkpoint(2, &ckpt(2)).unwrap();
        let mut names = storage.list().unwrap();
        names.sort();
        assert_eq!(
            names,
            vec![ckpt_name(1), ckpt_name(2), wal_name(1), wal_name(2),],
            "seq 0 pair is garbage-collected, 1 and 2 retained"
        );
    }

    #[test]
    fn storage_failure_poisons_the_log() {
        let mem = Arc::new(MemStorage::new());
        mem.fail_after(1, 0); // first op succeeds, second is killed
        let storage: Arc<dyn DurableStorage> = mem.clone();
        let log = DurableLog::new(storage, DurabilityPolicy::default(), 0);
        let staging = StagingArea::default();
        // First stage: append succeeds, sync is killed.
        let err = log
            .log_stage(
                &staging,
                UpdateBatch::insert_only(vec![tx(&[1])]),
                Admission::Try,
            )
            .unwrap_err();
        assert!(matches!(err, Error::Store(fup_tidb::Error::Io { .. })));
        assert!(log.is_poisoned());
        assert!(!staging.has_pending(), "killed batch must not be admitted");
        // Everything afterwards fails fast, even once storage recovers.
        mem.revive();
        let err = log
            .log_stage(
                &staging,
                UpdateBatch::insert_only(vec![tx(&[2])]),
                Admission::Try,
            )
            .unwrap_err();
        assert!(matches!(err, Error::Recovery { .. }));
        assert!(matches!(
            log.log_boundary(&WalRecord::Abort { tickets: vec![] })
                .unwrap_err(),
            Error::Recovery { .. }
        ));
    }

    /// A retry policy that retries immediately, keeping tests fast.
    fn instant_retry(attempts: u32) -> RetryPolicy {
        RetryPolicy::attempts(attempts).backoff(Duration::ZERO, Duration::ZERO)
    }

    fn flaky_log(attempts: u32) -> (Arc<FlakyStorage>, DurableLog) {
        let mem: Arc<dyn DurableStorage> = Arc::new(MemStorage::new());
        let flaky = Arc::new(FlakyStorage::new(mem));
        let storage: Arc<dyn DurableStorage> = flaky.clone();
        let log = DurableLog::new(
            storage,
            DurabilityPolicy::default().with_retry(instant_retry(attempts)),
            0,
        );
        (flaky, log)
    }

    #[test]
    fn transient_blips_within_budget_are_absorbed() {
        let (flaky, log) = flaky_log(4);
        let staging = StagingArea::default();
        flaky.fail_next(OpClass::Append, 2);
        let ticket = log
            .log_stage(
                &staging,
                UpdateBatch::insert_only(vec![tx(&[1])]),
                Admission::Try,
            )
            .unwrap();
        assert_eq!(log.state(), LogState::Healthy);
        assert_eq!(log.transient_retries(), 2);
        assert!(staging.has_pending(), "the retried batch was admitted");
        // A sync blip rides the same budget.
        flaky.fail_next(OpClass::Sync, 1);
        log.log_boundary(&WalRecord::Commit {
            version: 1,
            tickets: vec![ticket],
        })
        .unwrap();
        assert_eq!(log.state(), LogState::Healthy);
        assert_eq!(log.transient_retries(), 3);
    }

    #[test]
    fn exhausted_transient_retries_degrade_not_poison() {
        let (flaky, log) = flaky_log(3);
        let staging = StagingArea::default();
        flaky.fail_next(OpClass::Append, 10);
        let err = log
            .log_stage(
                &staging,
                UpdateBatch::insert_only(vec![tx(&[1])]),
                Admission::Try,
            )
            .unwrap_err();
        assert!(matches!(err, Error::Store(e) if e.is_transient()));
        assert_eq!(log.state(), LogState::Degraded);
        assert!(!log.is_poisoned());
        assert!(!staging.has_pending(), "failed batch must not be admitted");
        // Degraded: fail fast with the typed error, no storage traffic.
        let err = log
            .log_stage(
                &staging,
                UpdateBatch::insert_only(vec![tx(&[2])]),
                Admission::Try,
            )
            .unwrap_err();
        assert_eq!(err, Error::DurabilityDegraded);
        assert_eq!(
            log.log_boundary(&WalRecord::Abort { tickets: vec![] })
                .unwrap_err(),
            Error::DurabilityDegraded
        );
    }

    #[test]
    fn a_fresh_checkpoint_heals_a_degraded_log() {
        let (flaky, log) = flaky_log(2);
        let staging = StagingArea::default();
        flaky.fail_next(OpClass::Append, 2);
        log.log_stage(
            &staging,
            UpdateBatch::insert_only(vec![tx(&[1])]),
            Admission::Try,
        )
        .unwrap_err();
        assert_eq!(log.state(), LogState::Degraded);
        // The heal path: install a checkpoint (the fault script has run
        // dry, so storage answers again).
        let large = LargeItemsets::new(0);
        let ckpt =
            encode_checkpoint(1, 0, (1, 2), (1, 2), 0, 0, &[], &[], &large, &[], None).unwrap();
        log.install_checkpoint(1, &ckpt).unwrap();
        assert_eq!(log.state(), LogState::Healthy);
        // Durability has resumed on the fresh segment.
        log.log_stage(
            &staging,
            UpdateBatch::insert_only(vec![tx(&[2])]),
            Admission::Try,
        )
        .unwrap();
        assert_eq!(log.next_seq(), 2);
    }

    #[test]
    fn checkpoint_blips_are_retried_and_permanent_faults_still_poison() {
        let (flaky, log) = flaky_log(4);
        let large = LargeItemsets::new(0);
        let ckpt =
            encode_checkpoint(1, 0, (1, 2), (1, 2), 0, 0, &[], &[], &large, &[], None).unwrap();
        flaky.fail_next(OpClass::WriteAtomic, 2);
        flaky.fail_next(OpClass::List, 1);
        log.install_checkpoint(1, &ckpt).unwrap();
        assert_eq!(log.state(), LogState::Healthy);
        assert_eq!(log.transient_retries(), 3);
        // A permanent fault (a MemStorage kill) poisons even mid-retry
        // budget, and a later checkpoint cannot heal a poisoned log.
        let mem = Arc::new(MemStorage::new());
        let storage: Arc<dyn DurableStorage> = mem.clone();
        let log = DurableLog::new(
            storage,
            DurabilityPolicy::default().with_retry(instant_retry(4)),
            0,
        );
        mem.fail_after(0, 0);
        let err = log.install_checkpoint(1, &ckpt).unwrap_err();
        assert!(matches!(err, Error::Store(e) if !e.is_transient()));
        assert!(log.is_poisoned());
        mem.revive();
        assert!(matches!(
            log.install_checkpoint(2, &ckpt).unwrap_err(),
            Error::Recovery { .. }
        ));
    }
}

//! Process-per-shard cluster runtime: shard workers, a count-merge
//! coordinator, and single-shard crash recovery.
//!
//! This module lifts the tid-range sharding of the in-process
//! `ShardProvider` out of one address space: each shard
//! becomes a **worker** owning its own [`SegmentedDb`] slice, its own
//! WAL + checkpoint namespace (a per-shard [`DurableStorage`] root), and
//! its own persistent [`IndexSlot`]. A **coordinator** routes staged
//! batches through a [`ShardSpec`], broadcasts each round's candidate
//! tables, and merges the per-shard `(base, delta)` support splits by
//! summation — count distribution, exactly as in-process sharding, so
//! the cluster's itemsets and rules are **bit-identical** to a flat
//! [`Maintainer`](crate::Maintainer) over the same history and updates.
//!
//! ## Protocol and durability
//!
//! Coordinator and workers speak the [`fup_tidb::rpc`] message protocol
//! over a pluggable [`Transport`] (in-process channel pair here; the
//! same frames travel a Unix-domain socket unchanged). A worker's WAL
//! records *are* protocol frames: [`Message::StageRound`],
//! [`Message::CommitRound`] and [`Message::AbortRound`] are appended
//! verbatim before they take effect, so recovery replays the log with
//! the wire decoder and inherits the WAL's torn-tail prefix rule.
//!
//! ## Two-phase rounds
//!
//! A commit round is a two-phase protocol:
//!
//! 1. **Stage** — every worker WAL-logs the round and applies its
//!    deletes (answering with the removed rows, which the coordinator
//!    needs to count FUP2's delete side locally).
//! 2. **Count** — FUP/FUP2 run on the coordinator with a
//!    `VerticalProvider` whose splits are RPC sums; pass-1 base scans
//!    are offloaded the same way (`count_base_items` /
//!    `count_base_dense`), so no base row ever travels to the
//!    coordinator.
//! 3. **Decide** — `CommitRound` (or `AbortRound`) is WAL-logged and
//!    applied on every worker.
//!
//! A worker killed between phases recovers from its own checkpoint +
//! WAL: an undecided `StageRound` at the log's tail is re-staged and
//! reported at rejoin, and the coordinator resolves it from its
//! decision record — an acknowledged commit is never lost. While a
//! worker is down the coordinator fails rounds fast ([`Error::WorkerDown`]),
//! holding staged work in the bounded backlog (the backpressure gate);
//! published snapshots keep serving reads throughout.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use fup_mining::apriori::AprioriConfig;
use fup_mining::rules::generate_rules;
use fup_mining::{
    Apriori, CountingBackend, EngineConfig, ItemsetTable, LargeItemsets, MinConfidence, MinSupport,
    MiningStats,
};
use fup_tidb::rpc::{ChannelTransport, Message, Transport};
use fup_tidb::{
    Admission, ChunkScratch, DurableStorage, FaultKind, ItemId, RangeMove, ScanMetrics,
    SegmentedDb, ShardSpec, StagingArea, Tid, Transaction, TransactionDb, TransactionSource,
    TxChunk, UpdateBatch,
};

use crate::config::FupConfig;
use crate::diff::{ItemsetDiff, RuleDiff};
use crate::error::{Error, Result};
use crate::fup::Fup;
use crate::fup2::Fup2;
use crate::policy::UpdatePolicy;
use crate::service::ShardHealth;
use crate::session::{MaintenanceReport, RuleSnapshot, SnapshotState, Updater};
use crate::vindex::{IndexSlot, VerticalProvider};

/// Per-shard WAL file name inside the worker's storage namespace.
const WAL_FILE: &str = "wal";
/// Per-shard checkpoint file name.
const CHECKPOINT_FILE: &str = "checkpoint";
/// Attempts for transient storage faults on the worker's WAL path.
const WAL_RETRIES: u32 = 4;

/// One shard's routed slice of a batch: tid-assigned inserts + deletes.
type RoutedSlice = (Vec<(Tid, Transaction)>, Vec<Tid>);

// ========================================================== worker ==

/// A round staged on a worker, held until its phase-2 decision.
struct StagedRound {
    round: u64,
    inserts: Vec<(Tid, Transaction)>,
    deletes: Vec<Tid>,
    /// Rows the deletes removed, request order — echoed in `StagedOk`.
    removed: Vec<(Tid, Transaction)>,
}

/// One shard's process: a [`SegmentedDb`] slice, a persistent
/// [`IndexSlot`], and a WAL + checkpoint in a private [`DurableStorage`]
/// namespace. Drives nothing itself — [`run`](ShardWorker::run) serves
/// requests until the transport closes (which models a crash: memory is
/// lost, storage survives).
pub struct ShardWorker {
    shard: usize,
    db: SegmentedDb,
    slot: IndexSlot,
    engine: EngineConfig,
    storage: Arc<dyn DurableStorage>,
    decided_round: u64,
    staged: Option<StagedRound>,
    /// The round's engaged index and its base/delta boundary.
    round_index: Option<(fup_mining::VerticalIndex, u64)>,
}

impl ShardWorker {
    /// Rebuilds a worker from its storage namespace: checkpoint first,
    /// then the WAL replayed frame by frame with the torn-tail prefix
    /// rule. An undecided `StageRound` at the tail is re-staged (its
    /// deletes re-applied) and will be reported at the next
    /// `HealthProbe`, so the coordinator can resolve it from its
    /// decision record. An empty namespace yields an empty shard.
    pub fn recover(
        shard: usize,
        storage: Arc<dyn DurableStorage>,
        engine: EngineConfig,
    ) -> Result<ShardWorker> {
        let mut db = SegmentedDb::new();
        let mut decided_round = 0u64;
        if let Some(bytes) = storage.read(CHECKPOINT_FILE).map_err(Error::Store)? {
            let (frames, torn) = fup_tidb::rpc::read_frames(&bytes);
            match (frames.as_slice(), torn) {
                ([Message::CommitRound { round }, Message::Rows(rows)], None) => {
                    decided_round = *round;
                    db.append_pairs(rows.clone());
                }
                _ => {
                    return Err(Error::Recovery {
                        reason: format!("shard {shard}: malformed checkpoint"),
                    })
                }
            }
        }
        let mut pending: Option<(u64, RoutedSlice)> = None;
        if let Some(bytes) = storage.read(WAL_FILE).map_err(Error::Store)? {
            let (frames, _torn) = fup_tidb::rpc::read_frames(&bytes);
            for frame in frames {
                match frame {
                    Message::StageRound {
                        round,
                        inserts,
                        deletes,
                    } if round > decided_round => {
                        // Idempotent against a duplicated append: the
                        // same round re-staged replaces itself.
                        pending = Some((round, (inserts, deletes)));
                    }
                    Message::CommitRound { round } => {
                        if let Some((r, (inserts, deletes))) = pending.take() {
                            if r == round {
                                for tid in deletes {
                                    let _ = db.remove_tid(tid);
                                }
                                db.append_pairs(inserts);
                            }
                        }
                        decided_round = decided_round.max(round);
                    }
                    Message::AbortRound { round } => {
                        if let Some((r, _)) = &pending {
                            if *r == round {
                                pending = None;
                            }
                        }
                        decided_round = decided_round.max(round);
                    }
                    _ => {}
                }
            }
        }
        let staged = pending.map(|(round, (inserts, deletes))| {
            let mut removed = Vec::with_capacity(deletes.len());
            for &tid in &deletes {
                if let Some(t) = db.remove_tid(tid) {
                    removed.push((tid, t));
                }
            }
            StagedRound {
                round,
                inserts,
                deletes,
                removed,
            }
        });
        Ok(ShardWorker {
            shard,
            db,
            slot: IndexSlot::new(),
            engine,
            storage,
            decided_round,
            staged,
            round_index: None,
        })
    }

    /// Serves requests until the transport closes or a `Shutdown`
    /// arrives. A transport error is the crash model: the loop returns,
    /// dropping all in-memory state; only the storage namespace
    /// survives for [`recover`](ShardWorker::recover).
    pub fn run(&mut self, transport: &mut dyn Transport) {
        loop {
            let msg = match transport.recv() {
                Ok(m) => m,
                Err(_) => return,
            };
            let stop = matches!(msg, Message::Shutdown);
            let reply = match self.handle(&msg) {
                Ok(r) => r,
                Err(e) => Message::Err(e.to_string()),
            };
            if transport.send(&reply).is_err() {
                return;
            }
            if stop {
                return;
            }
        }
    }

    /// Appends one protocol frame to the WAL and syncs, retrying
    /// transient faults (a transient fault leaves nothing behind — the
    /// [`FlakyStorage`](fup_tidb::FlakyStorage) contract).
    fn wal_append(&self, frame: &[u8]) -> Result<()> {
        self.wal_retry(|| self.storage.append(WAL_FILE, frame))?;
        self.wal_retry(|| self.storage.sync(WAL_FILE))
    }

    fn wal_retry(&self, mut op: impl FnMut() -> fup_tidb::Result<()>) -> Result<()> {
        let mut last: Option<fup_tidb::Error> = None;
        for _ in 0..WAL_RETRIES {
            match op() {
                Ok(()) => return Ok(()),
                Err(
                    e @ fup_tidb::Error::Io {
                        kind: FaultKind::Transient,
                        ..
                    },
                ) => last = Some(e),
                Err(e) => return Err(Error::Store(e)),
            }
        }
        Err(Error::Store(last.expect("at least one attempt ran")))
    }

    /// The staged round's insert side as a local delta source.
    fn staged_delta(&self) -> TransactionDb {
        let inserts = self
            .staged
            .as_ref()
            .map(|s| s.inserts.as_slice())
            .unwrap_or(&[]);
        TransactionDb::from_transactions(inserts.iter().map(|(_, t)| t.clone()))
    }

    fn handle(&mut self, msg: &Message) -> Result<Message> {
        match msg {
            Message::StageRound {
                round,
                inserts,
                deletes,
            } => self.handle_stage(*round, inserts, deletes),
            Message::Engage { keep } => {
                if self.staged.is_none() {
                    return Ok(Message::Err("engage without a staged round".into()));
                }
                if self.round_index.is_none() {
                    let delta = self.staged_delta();
                    let boundary = TransactionSource::num_transactions(&self.db);
                    let idx = self.slot.acquire_items(
                        keep.iter().copied(),
                        &self.db,
                        &delta,
                        &self.engine,
                    );
                    self.round_index = Some((idx, boundary));
                }
                Ok(Message::Ok)
            }
            Message::CountSplit { k, items } => {
                let Some((idx, boundary)) = &self.round_index else {
                    return Ok(Message::Err("count before engage".into()));
                };
                let table = ItemsetTable::from_flat_rows(*k as usize, items.clone());
                Ok(Message::Splits(idx.count_rows_split(
                    &table,
                    *boundary,
                    &self.engine,
                )))
            }
            Message::CountItems { items } => {
                let index_of: HashMap<ItemId, usize> =
                    items.iter().enumerate().map(|(i, &x)| (x, i)).collect();
                let mut counts = vec![0u64; items.len()];
                TransactionSource::for_each(&self.db, &mut |tx: &[ItemId]| {
                    for item in tx {
                        if let Some(&i) = index_of.get(item) {
                            counts[i] += 1;
                        }
                    }
                });
                Ok(Message::Counts(counts))
            }
            Message::CountDense => {
                let mut counts: Vec<u64> = Vec::new();
                TransactionSource::for_each(&self.db, &mut |tx: &[ItemId]| {
                    for item in tx {
                        let i = item.index();
                        if i >= counts.len() {
                            counts.resize(i + 1, 0);
                        }
                        counts[i] += 1;
                    }
                });
                Ok(Message::Counts(counts))
            }
            Message::FinishRound => {
                if let Some((idx, _)) = self.round_index.take() {
                    self.slot.stash(idx);
                }
                Ok(Message::Ok)
            }
            Message::CommitRound { round } => self.handle_commit(*round, msg),
            Message::AbortRound { round } => self.handle_abort(*round, msg),
            Message::Checkpoint => self.handle_checkpoint(),
            Message::HealthProbe => Ok(Message::Health {
                live: self.db.len() as u64,
                decided_round: self.decided_round,
                staged_round: self.staged.as_ref().map(|s| s.round),
            }),
            Message::FetchRows => Ok(Message::Rows(
                self.db.iter().map(|(tid, t)| (tid, t.clone())).collect(),
            )),
            Message::Shutdown => Ok(Message::Ok),
            other => Ok(Message::Err(format!(
                "unexpected message for shard {}: {other:?}",
                self.shard
            ))),
        }
    }

    fn handle_stage(
        &mut self,
        round: u64,
        inserts: &[(Tid, Transaction)],
        deletes: &[Tid],
    ) -> Result<Message> {
        if let Some(st) = &self.staged {
            // Idempotent re-stage (coordinator retry after a lost
            // reply): answer from the held round.
            if st.round == round {
                return Ok(Message::StagedOk {
                    round,
                    removed: st.removed.clone(),
                });
            }
            return Ok(Message::Err(format!(
                "round {} still staged, refusing round {round}",
                st.round
            )));
        }
        if round <= self.decided_round {
            return Ok(Message::Err(format!(
                "stale round {round} (decided {})",
                self.decided_round
            )));
        }
        let mut seen = HashSet::new();
        for tid in deletes {
            if !self.db.contains(*tid) || !seen.insert(*tid) {
                return Ok(Message::Err(format!("unknown tid {}", tid.0)));
            }
        }
        // Log before acting: the frame *is* the WAL record.
        let frame = Message::StageRound {
            round,
            inserts: inserts.to_vec(),
            deletes: deletes.to_vec(),
        }
        .to_frame();
        self.wal_append(&frame)?;
        let mut removed = Vec::with_capacity(deletes.len());
        for &tid in deletes {
            let t = self.db.remove_tid(tid).expect("validated above");
            removed.push((tid, t));
        }
        self.staged = Some(StagedRound {
            round,
            inserts: inserts.to_vec(),
            deletes: deletes.to_vec(),
            removed: removed.clone(),
        });
        Ok(Message::StagedOk { round, removed })
    }

    fn handle_commit(&mut self, round: u64, msg: &Message) -> Result<Message> {
        let Some(st) = &self.staged else {
            // Idempotent redelivery of an already-decided round (the
            // rejoin handshake may resolve a round the worker already
            // decided before crashing).
            if round <= self.decided_round {
                return Ok(Message::Ok);
            }
            return Ok(Message::Err(format!("no staged round to commit ({round})")));
        };
        if st.round != round {
            return Ok(Message::Err(format!(
                "staged round {} does not match commit {round}",
                st.round
            )));
        }
        self.wal_append(&msg.to_frame())?;
        let st = self.staged.take().expect("checked above");
        self.db.append_pairs(st.inserts.clone());
        // Mirror the flat session's `align_index`: a round whose
        // counting stashed the index (FinishRound) already covers
        // base ∪ delta; otherwise insert-only rounds extend the held
        // index, delete rounds drop it (swap_remove reordered the live
        // set).
        let touched = self.slot.take_touched();
        if !touched {
            if st.deletes.is_empty() {
                let delta =
                    TransactionDb::from_transactions(st.inserts.iter().map(|(_, t)| t.clone()));
                self.slot.extend_with(&delta, &self.engine);
            } else {
                self.slot.clear();
            }
        }
        self.round_index = None;
        self.decided_round = round;
        Ok(Message::Ok)
    }

    fn handle_abort(&mut self, round: u64, msg: &Message) -> Result<Message> {
        let Some(st) = &self.staged else {
            if round <= self.decided_round {
                return Ok(Message::Ok);
            }
            return Ok(Message::Err(format!("no staged round to abort ({round})")));
        };
        if st.round != round {
            return Ok(Message::Err(format!(
                "staged round {} does not match abort {round}",
                st.round
            )));
        }
        self.wal_append(&msg.to_frame())?;
        let st = self.staged.take().expect("checked above");
        // Removed rows go back at the end of the live set, exactly as
        // the in-process abort does — which is why the slot must drop
        // its index when rows were removed (order changed).
        self.db.append_pairs(st.removed);
        if !st.deletes.is_empty() {
            self.slot.clear();
        }
        let _ = self.slot.take_touched();
        self.round_index = None;
        self.decided_round = round;
        Ok(Message::Ok)
    }

    fn handle_checkpoint(&mut self) -> Result<Message> {
        if self.staged.is_some() {
            return Ok(Message::Err("checkpoint with a round staged".into()));
        }
        let mut bytes = Message::CommitRound {
            round: self.decided_round,
        }
        .to_frame();
        bytes.extend_from_slice(
            &Message::Rows(self.db.iter().map(|(tid, t)| (tid, t.clone())).collect()).to_frame(),
        );
        self.storage
            .write_atomic(CHECKPOINT_FILE, &bytes)
            .map_err(Error::Store)?;
        self.storage.remove(WAL_FILE).map_err(Error::Store)?;
        Ok(Message::Ok)
    }
}

// ==================================================== phantom base ==

/// A [`TransactionSource`] standing in for base rows that live in the
/// shard workers: it knows its size (the algorithms' `|DB|` / `|DB⁻|`
/// arithmetic needs it) but panics on any scan — with the engine pinned
/// to [`CountingBackend::Vertical`] and the provider answering the
/// pass-1 hooks, no code path should ever scan it, and a panic here is
/// a provider regression, not a recoverable condition.
struct PhantomSource {
    n: u64,
    metrics: ScanMetrics,
}

impl PhantomSource {
    fn new(n: u64) -> Self {
        PhantomSource {
            n,
            metrics: ScanMetrics::new(),
        }
    }
}

impl TransactionSource for PhantomSource {
    fn num_transactions(&self) -> u64 {
        self.n
    }

    fn for_each(&self, _f: &mut dyn FnMut(&[ItemId])) {
        panic!("cluster base rows live in shard workers; local scan is a provider regression");
    }

    fn metrics(&self) -> &ScanMetrics {
        &self.metrics
    }

    fn chunk<'s>(
        &'s self,
        _chunk_size: usize,
        _index: u64,
        _scratch: &'s mut ChunkScratch,
    ) -> TxChunk<'s> {
        panic!("cluster base rows live in shard workers; local scan is a provider regression");
    }
}

// ======================================================= provider ==

/// The cluster's [`VerticalProvider`]: every split request is broadcast
/// to the workers and the per-shard answers are summed element-wise —
/// supports are additive over disjoint tid ranges, so the sums equal a
/// flat index's splits bit for bit. Worker failures cannot surface as
/// `Err` through the provider seam (the round loops treat counts as
/// infallible), so they are recorded in a failure flag the coordinator
/// checks after the run; counts returned after a failure are garbage
/// and the round is aborted without looking at them.
struct ClusterProvider<'a> {
    workers: &'a [WorkerHandle],
    engaged: bool,
    failure: std::cell::RefCell<Option<(usize, String)>>,
}

impl<'a> ClusterProvider<'a> {
    fn new(workers: &'a [WorkerHandle]) -> Self {
        ClusterProvider {
            workers,
            engaged: false,
            failure: std::cell::RefCell::new(None),
        }
    }

    fn note_failure(&self, shard: usize, reason: String) {
        let mut slot = self.failure.borrow_mut();
        if slot.is_none() {
            *slot = Some((shard, reason));
        }
    }

    fn take_failure(&self) -> Option<(usize, String)> {
        self.failure.borrow_mut().take()
    }

    /// One request/reply exchange with worker `s`; transport errors and
    /// `Err` replies both land in the failure flag.
    fn exchange(&self, s: usize, msg: &Message) -> Option<Message> {
        match self.workers[s].call(msg) {
            Ok(Message::Err(reason)) => {
                self.note_failure(s, reason);
                None
            }
            Ok(reply) => Some(reply),
            Err(e) => {
                self.note_failure(s, e.to_string());
                None
            }
        }
    }
}

impl VerticalProvider for ClusterProvider<'_> {
    fn engaged(&self) -> bool {
        self.engaged
    }

    fn engage(&mut self, old: &LargeItemsets, result: &LargeItemsets, _engine: &EngineConfig) {
        if self.engaged {
            return;
        }
        let mut keep: Vec<ItemId> = old
            .level(1)
            .chain(result.level(1))
            .map(|(x, _)| x.items()[0])
            .collect();
        keep.sort_unstable();
        keep.dedup();
        let msg = Message::Engage { keep };
        for s in 0..self.workers.len() {
            if let Some(reply) = self.exchange(s, &msg) {
                if reply != Message::Ok {
                    self.note_failure(s, format!("unexpected engage reply: {reply:?}"));
                }
            }
        }
        self.engaged = true;
    }

    fn count_split(&self, table: &ItemsetTable, _engine: &EngineConfig) -> Vec<(u64, u64)> {
        if table.is_empty() {
            // An empty table has nothing to count — and would encode as
            // a zero-strided `CountSplit`, which workers reject as
            // corruption.
            return Vec::new();
        }
        let msg = Message::CountSplit {
            k: table.k() as u32,
            items: table.flat_items().to_vec(),
        };
        let mut totals = vec![(0u64, 0u64); table.len()];
        for s in 0..self.workers.len() {
            match self.exchange(s, &msg) {
                Some(Message::Splits(v)) if v.len() == totals.len() => {
                    for (t, x) in totals.iter_mut().zip(v) {
                        t.0 += x.0;
                        t.1 += x.1;
                    }
                }
                Some(reply) => self.note_failure(s, format!("unexpected splits reply: {reply:?}")),
                None => {}
            }
        }
        totals
    }

    fn count_base_items(&self, items: &[ItemId], _engine: &EngineConfig) -> Option<Vec<u64>> {
        let msg = Message::CountItems {
            items: items.to_vec(),
        };
        let mut totals = vec![0u64; items.len()];
        for s in 0..self.workers.len() {
            match self.exchange(s, &msg) {
                Some(Message::Counts(v)) if v.len() == totals.len() => {
                    for (t, x) in totals.iter_mut().zip(v) {
                        *t += x;
                    }
                }
                Some(reply) => self.note_failure(s, format!("unexpected counts reply: {reply:?}")),
                None => {}
            }
        }
        // Always `Some`: the base source is a phantom and must never be
        // scanned, even on a failed round (the coordinator aborts it).
        Some(totals)
    }

    fn count_base_dense(&self, _engine: &EngineConfig) -> Option<Vec<u64>> {
        let mut totals: Vec<u64> = Vec::new();
        for s in 0..self.workers.len() {
            match self.exchange(s, &Message::CountDense) {
                Some(Message::Counts(v)) => {
                    if v.len() > totals.len() {
                        totals.resize(v.len(), 0);
                    }
                    for (i, x) in v.into_iter().enumerate() {
                        totals[i] += x;
                    }
                }
                Some(reply) => self.note_failure(s, format!("unexpected counts reply: {reply:?}")),
                None => {}
            }
        }
        Some(totals)
    }

    fn finish(&mut self) {
        if !self.engaged {
            return;
        }
        for s in 0..self.workers.len() {
            let _ = self.exchange(s, &Message::FinishRound);
        }
    }
}

// ==================================================== coordinator ==

/// Coordinator-side handle to one shard worker.
struct WorkerHandle {
    transport: Mutex<Box<dyn Transport>>,
    up: bool,
    /// A round staged on the worker awaiting its phase-2 decision (set
    /// through crash windows so the rejoin handshake can resolve it).
    staged_round: Option<u64>,
    /// Update operations (inserts + deletes) committed into this shard
    /// since the cluster started.
    ops: u64,
}

impl WorkerHandle {
    fn call(&self, msg: &Message) -> Result<Message> {
        let mut t = self.transport.lock().expect("transport lock");
        t.send(msg).map_err(Error::Store)?;
        t.recv().map_err(Error::Store)
    }
}

/// The process-per-shard cluster session: same algebra as
/// [`Maintainer`](crate::Maintainer) (stage → commit → versioned
/// snapshot), with the store split across shard workers and every
/// support a sum of per-shard counts. See the module docs for the
/// protocol; see `Cluster::bootstrap` for construction.
pub struct Cluster {
    spec: ShardSpec,
    minsup: MinSupport,
    minconf: MinConfidence,
    config: FupConfig,
    policy: UpdatePolicy,
    updater: Updater,
    workers: Vec<WorkerHandle>,
    threads: Vec<Option<JoinHandle<()>>>,
    storages: Vec<Arc<dyn DurableStorage>>,
    staging: Arc<StagingArea>,
    state: Arc<SnapshotState>,
    next_tid: u64,
    total_live: u64,
    round: u64,
    /// Phase-2 decision per round: `true` committed, `false` aborted.
    /// This is what makes an acknowledged commit survive a worker
    /// crash — the rejoin handshake replays the decision.
    decisions: HashMap<u64, bool>,
    /// A drained batch whose round failed on a transport error; held
    /// (with its delete claims and its slice of the backpressure gate)
    /// until the worker rejoins and the round can re-run.
    retry: Option<UpdateBatch>,
}

fn down(shard: usize, reason: impl std::fmt::Display) -> Error {
    Error::WorkerDown {
        shard,
        reason: reason.to_string(),
    }
}

fn spawn_worker(
    s: usize,
    storage: Arc<dyn DurableStorage>,
    engine: EngineConfig,
) -> (WorkerHandle, JoinHandle<()>) {
    let (coord, mut remote) = ChannelTransport::pair();
    let thread = std::thread::Builder::new()
        .name(format!("fup-shard-{s}"))
        .spawn(move || match ShardWorker::recover(s, storage, engine) {
            Ok(mut worker) => worker.run(&mut remote),
            Err(e) => eprintln!("worker {s} recover failed: {e}"),
        })
        .expect("spawn shard worker");
    let handle = WorkerHandle {
        transport: Mutex::new(Box::new(coord)),
        up: true,
        staged_round: None,
        ops: 0,
    };
    (handle, thread)
}

impl Cluster {
    /// Boots a cluster: mines `history` from scratch (bit-identical to
    /// the flat bootstrap — Apriori's result does not depend on row
    /// placement), spawns one worker per shard of `spec` on its storage
    /// namespace, and loads the routed history through a first
    /// stage/commit round followed by a checkpoint, so every shard
    /// starts durable with an empty WAL.
    ///
    /// The engine backend is pinned to [`CountingBackend::Vertical`]:
    /// every k ≥ 2 pass counts through the per-shard indexes (summed
    /// splits), and pass 1 goes through the count hooks — no base row
    /// ever travels to the coordinator. Storages must be empty (worker
    /// recovery into an existing namespace is
    /// [`restart_worker`](Cluster::restart_worker)'s job).
    pub fn bootstrap(
        spec: ShardSpec,
        storages: Vec<Arc<dyn DurableStorage>>,
        history: Vec<Transaction>,
        minsup: MinSupport,
        minconf: MinConfidence,
        mut config: FupConfig,
    ) -> Result<Cluster> {
        spec.validate()
            .map_err(|e| Error::Config(crate::error::BuildError::InvalidShardSpec(e)))?;
        if storages.len() != spec.num_shards() {
            return Err(Error::Recovery {
                reason: format!(
                    "{} storage namespaces for {} shards",
                    storages.len(),
                    spec.num_shards()
                ),
            });
        }
        config.engine.backend = CountingBackend::Vertical;
        let db = TransactionDb::from_transactions(history.iter().cloned());
        let (outcome, _) = Apriori::with_config(AprioriConfig {
            engine: config.engine.clone(),
            ..Default::default()
        })
        .run_with_index(&db, minsup);
        let large = outcome.large;
        let rules = generate_rules(&large, minconf);
        let n = history.len() as u64;
        let state = Arc::new(SnapshotState::new(0, n, minsup, minconf, large, rules));

        let mut workers = Vec::with_capacity(spec.num_shards());
        let mut threads = Vec::with_capacity(spec.num_shards());
        for (s, storage) in storages.iter().enumerate() {
            let (handle, thread) = spawn_worker(s, Arc::clone(storage), config.engine.clone());
            workers.push(handle);
            threads.push(Some(thread));
        }
        let staging = Arc::new(StagingArea::with_shards(1));
        let mut cluster = Cluster {
            spec,
            minsup,
            minconf,
            config,
            policy: UpdatePolicy::default(),
            updater: Updater::default(),
            workers,
            threads,
            storages,
            staging,
            state,
            next_tid: 0,
            total_live: 0,
            round: 0,
            decisions: HashMap::new(),
            retry: None,
        };
        for s in 0..cluster.workers.len() {
            match cluster.workers[s].call(&Message::HealthProbe)? {
                Message::Health {
                    live: 0,
                    decided_round: 0,
                    staged_round: None,
                } => {}
                _ => {
                    return Err(Error::Recovery {
                        reason: format!("shard {s}: storage namespace is not empty"),
                    })
                }
            }
        }
        // Initial load: route the history as commit round 1, then
        // checkpoint so the bulk rows live in the checkpoint, not the WAL.
        let batch = UpdateBatch::insert_only(history);
        cluster.run_two_phase(&batch)?;
        cluster.checkpoint()?;
        Ok(cluster)
    }

    /// Replaces the re-mine routing policy.
    pub fn set_policy(&mut self, policy: UpdatePolicy) {
        self.policy = policy;
    }

    /// Forces the updater choice ([`Updater::Auto`] picks FUP for
    /// pure-insert rounds, FUP2 otherwise).
    pub fn set_updater(&mut self, updater: Updater) {
        self.updater = updater;
    }

    /// Bounds the staged-but-uncommitted backlog (the backpressure
    /// gate); `None` removes the bound.
    pub fn set_staging_capacity(&mut self, limit: Option<u64>) {
        self.staging.set_capacity(limit);
    }

    /// Number of shards (= workers).
    pub fn num_shards(&self) -> usize {
        self.spec.num_shards()
    }

    /// Live transactions across all shards.
    pub fn num_transactions(&self) -> u64 {
        self.total_live
    }

    /// Current snapshot version (0 after bootstrap, +1 per commit).
    pub fn version(&self) -> u64 {
        self.state.version()
    }

    /// A consistent, `Arc`-backed view of the current rules/itemsets —
    /// stays valid and readable no matter what the cluster does next
    /// (including while a killed worker recovers).
    pub fn snapshot(&self) -> RuleSnapshot {
        RuleSnapshot::from_state(Arc::clone(&self.state))
    }

    /// `true` if worker `shard` is reachable.
    pub fn worker_up(&self, shard: usize) -> bool {
        self.workers[shard].up
    }

    /// Queues a batch, validating deletes at arrival (live + unclaimed)
    /// and blocking on the capacity gate when one is set. Returns the
    /// arrival ticket.
    pub fn stage(&self, batch: UpdateBatch) -> Result<u64> {
        self.staging
            .stage_with(batch, Admission::Block)
            .map_err(Error::Store)
    }

    /// Non-blocking [`stage`](Cluster::stage).
    pub fn try_stage(&self, batch: UpdateBatch) -> Result<u64> {
        self.staging
            .stage_with(batch, Admission::Try)
            .map_err(Error::Store)
    }

    /// [`stage`](Cluster::stage) + [`commit`](Cluster::commit).
    pub fn apply(&mut self, batch: UpdateBatch) -> Result<MaintenanceReport> {
        self.stage(batch)?;
        self.commit()
    }
}

impl Cluster {
    /// Routes a batch through the shard spec: inserts get prospective
    /// tids (`next_tid + i`, the tids the commit will assign), deletes
    /// go to the shard owning their tid.
    fn route(&self, batch: &UpdateBatch) -> Vec<RoutedSlice> {
        let mut out = vec![(Vec::new(), Vec::new()); self.spec.num_shards()];
        for (i, t) in batch.inserts.iter().enumerate() {
            let tid = Tid(self.next_tid + i as u64);
            out[self.spec.shard_of(tid)].0.push((tid, t.clone()));
        }
        for &tid in &batch.deletes {
            out[self.spec.shard_of(tid)].1.push(tid);
        }
        out
    }

    fn ensure_all_up(&self) -> Result<()> {
        for (s, w) in self.workers.iter().enumerate() {
            if !w.up {
                return Err(down(s, "worker is down; staged work held until it rejoins"));
            }
        }
        Ok(())
    }

    /// Phase 1: stages `routed` as `round` on every worker (empty
    /// slices included — round boundaries are lockstep). On success
    /// returns the rows the deletes removed, keyed by tid. On failure
    /// the already-staged prefix is aborted and the failing worker is
    /// marked down.
    fn stage_round(
        &mut self,
        round: u64,
        routed: &[RoutedSlice],
    ) -> Result<HashMap<u64, Transaction>> {
        let mut removed = HashMap::new();
        let mut staged_on: Vec<usize> = Vec::new();
        for (s, slice) in routed.iter().enumerate() {
            let msg = Message::StageRound {
                round,
                inserts: slice.0.clone(),
                deletes: slice.1.clone(),
            };
            let fail = |reason: String| -> (usize, String) { (s, reason) };
            let err = match self.workers[s].call(&msg) {
                Ok(Message::StagedOk {
                    round: r,
                    removed: rem,
                }) if r == round => {
                    staged_on.push(s);
                    self.workers[s].staged_round = Some(round);
                    for (tid, t) in rem {
                        removed.insert(tid.0, t);
                    }
                    continue;
                }
                Ok(Message::Err(reason)) => fail(reason),
                Ok(other) => fail(format!("unexpected stage reply: {other:?}")),
                Err(e) => {
                    self.workers[s].up = false;
                    fail(e.to_string())
                }
            };
            self.abort_round(round, &staged_on);
            self.decisions.insert(round, false);
            self.round = round;
            return Err(down(err.0, err.1));
        }
        Ok(removed)
    }

    /// Phase 2 (commit arm): decides `round` as committed and delivers
    /// the decision to every worker. A worker that cannot be reached
    /// keeps its staged round durably and completes the commit from the
    /// decision record at rejoin — the commit is acknowledged either
    /// way, because every worker holds the round in its WAL.
    fn commit_round(&mut self, round: u64, routed: &[RoutedSlice]) {
        self.decisions.insert(round, true);
        self.round = round;
        let msg = Message::CommitRound { round };
        for (s, slice) in routed.iter().enumerate() {
            match self.workers[s].call(&msg) {
                Ok(Message::Ok) => {
                    self.workers[s].staged_round = None;
                    self.workers[s].ops += slice.0.len() as u64 + slice.1.len() as u64;
                }
                Ok(_) | Err(_) => {
                    // Staged durably on the worker; resolved at rejoin.
                    self.workers[s].up = false;
                }
            }
        }
    }

    /// Phase 2 (abort arm): delivers the abort to every worker in
    /// `staged_on`; unreachable workers resolve at rejoin from the
    /// decision record.
    fn abort_round(&mut self, round: u64, staged_on: &[usize]) {
        let msg = Message::AbortRound { round };
        for &s in staged_on {
            match self.workers[s].call(&msg) {
                Ok(Message::Ok) => self.workers[s].staged_round = None,
                Ok(_) | Err(_) => self.workers[s].up = false,
            }
        }
    }

    /// Stage + commit with no counting in between — the load path for
    /// bootstrap and rebalance rounds. Updates all coordinator
    /// bookkeeping (tids, live view, claims, totals).
    fn run_two_phase(&mut self, batch: &UpdateBatch) -> Result<Vec<Tid>> {
        let round = self.round + 1;
        let routed = self.route(batch);
        self.stage_round(round, &routed)?;
        let new_tids: Vec<Tid> = (0..batch.inserts.len() as u64)
            .map(|i| Tid(self.next_tid + i))
            .collect();
        self.commit_round(round, &routed);
        self.staging.live_remove(batch.deletes.iter().copied());
        self.staging.release_deletes(batch.deletes.iter().copied());
        self.staging.live_insert(new_tids.iter().copied());
        self.next_tid += batch.inserts.len() as u64;
        self.total_live = self.total_live + batch.inserts.len() as u64 - batch.deletes.len() as u64;
        Ok(new_tids)
    }

    /// Commits everything staged (plus a held retry batch, if a prior
    /// round failed on a worker crash) as **one** maintenance round:
    /// two-phase against the workers, FUP/FUP2 counting through the
    /// summed provider in between, snapshot published at the end.
    ///
    /// Fails fast with [`Error::WorkerDown`] while any worker is down —
    /// staged batches stay in the bounded backlog (claims and capacity
    /// held) until the worker rejoins.
    pub fn commit(&mut self) -> Result<MaintenanceReport> {
        self.ensure_all_up()?;
        let drained = self.staging.drain_entries_up_to(None);
        let mut batch = StagingArea::merge_entries(drained);
        if let Some(held) = self.retry.take() {
            // The held batch drained earlier — its ops re-entered the
            // gate when it was parked; pay them back out now.
            self.staging.release_capacity(held.num_ops());
            let mut merged = held;
            merged.inserts.extend(batch.inserts);
            merged.deletes.extend(batch.deletes);
            batch = merged;
        }
        self.commit_batch(batch)
    }

    fn commit_batch(&mut self, batch: UpdateBatch) -> Result<MaintenanceReport> {
        let ops = batch.num_ops();
        if self.policy.should_remine(ops, self.total_live) {
            return self.commit_by_remine(batch);
        }
        let round = self.round + 1;
        let routed = self.route(&batch);
        let removed = match self.stage_round(round, &routed) {
            Ok(removed) => removed,
            Err(e) => {
                self.park_retry(batch);
                return Err(e);
            }
        };
        let d_minus = batch.deletes.len() as u64;
        let deleted_db = TransactionDb::from_transactions(batch.deletes.iter().map(|tid| {
            removed
                .get(&tid.0)
                .expect("worker acknowledged every routed delete")
                .clone()
        }));
        let inserted_db = TransactionDb::from_transactions(batch.inserts.iter().cloned());
        let pure_insert = d_minus == 0;
        let use_fup = match self.updater {
            Updater::Auto => pure_insert,
            Updater::Fup => true,
            Updater::Fup2 => false,
        };
        if use_fup {
            debug_assert!(pure_insert, "FUP cannot process deletions");
        }
        let state = Arc::clone(&self.state);
        let mut provider = ClusterProvider::new(&self.workers);
        let outcome = if use_fup {
            let base = PhantomSource::new(self.total_live);
            Fup::with_config(self.config.clone()).update_with_provider(
                &base,
                state.large(),
                &inserted_db,
                self.minsup,
                &mut provider,
            )
        } else {
            let remainder = PhantomSource::new(self.total_live - d_minus);
            Fup2::with_config(self.config.clone()).update_with_provider(
                &remainder,
                state.large(),
                &deleted_db,
                &inserted_db,
                self.minsup,
                &mut provider,
            )
        };
        let failure = provider.take_failure();
        drop(provider);
        if let Some((shard, reason)) = failure {
            // Counting lost a worker mid-round: the sums are garbage.
            // Abort everywhere reachable (the dead worker resolves at
            // rejoin) and hold the batch for a re-run.
            let staged: Vec<usize> = (0..self.workers.len()).collect();
            self.abort_round(round, &staged);
            self.decisions.insert(round, false);
            self.round = round;
            self.workers[shard].up = false;
            self.park_retry(batch);
            return Err(down(shard, reason));
        }
        let outcome = match outcome {
            Ok(o) => o,
            Err(e) => {
                // Algorithm-level rejection (e.g. a stale baseline):
                // mirror the flat session — the batch is consumed, the
                // round aborted, claims released.
                let staged: Vec<usize> = (0..self.workers.len()).collect();
                self.abort_round(round, &staged);
                self.decisions.insert(round, false);
                self.round = round;
                self.staging.release_deletes(batch.deletes.iter().copied());
                return Err(e);
            }
        };
        let new_tids: Vec<Tid> = (0..batch.inserts.len() as u64)
            .map(|i| Tid(self.next_tid + i))
            .collect();
        self.commit_round(round, &routed);
        self.staging.live_remove(batch.deletes.iter().copied());
        self.staging.release_deletes(batch.deletes.iter().copied());
        self.staging.live_insert(new_tids.iter().copied());
        self.next_tid += batch.inserts.len() as u64;
        self.total_live = self.total_live + batch.inserts.len() as u64 - d_minus;
        let algorithm = if use_fup { "fup" } else { "fup2" };
        Ok(self.publish(outcome.large, algorithm, outcome.stats, new_tids))
    }

    /// Policy-routed re-mine: the batch still two-phases through the
    /// workers, but counting is a from-scratch Apriori over the rows
    /// fetched back from every shard (after the deletes, plus the
    /// batch's inserts) — the round's post-state, mined locally.
    fn commit_by_remine(&mut self, batch: UpdateBatch) -> Result<MaintenanceReport> {
        let round = self.round + 1;
        let routed = self.route(&batch);
        if let Err(e) = self.stage_round(round, &routed) {
            self.park_retry(batch);
            return Err(e);
        }
        let mut rows: Vec<Transaction> = Vec::new();
        for s in 0..self.workers.len() {
            match self.workers[s].call(&Message::FetchRows) {
                Ok(Message::Rows(v)) => rows.extend(v.into_iter().map(|(_, t)| t)),
                Ok(other) => {
                    let staged: Vec<usize> = (0..self.workers.len()).collect();
                    self.abort_round(round, &staged);
                    self.decisions.insert(round, false);
                    self.round = round;
                    self.park_retry(batch);
                    return Err(down(s, format!("unexpected rows reply: {other:?}")));
                }
                Err(e) => {
                    self.workers[s].up = false;
                    let staged: Vec<usize> = (0..self.workers.len()).collect();
                    self.abort_round(round, &staged);
                    self.decisions.insert(round, false);
                    self.round = round;
                    self.park_retry(batch);
                    return Err(down(s, e.to_string()));
                }
            }
        }
        rows.extend(batch.inserts.iter().cloned());
        let db = TransactionDb::from_transactions(rows);
        let (outcome, _) = Apriori::with_config(AprioriConfig {
            engine: self.config.engine.clone(),
            ..Default::default()
        })
        .run_with_index(&db, self.minsup);
        let new_tids: Vec<Tid> = (0..batch.inserts.len() as u64)
            .map(|i| Tid(self.next_tid + i))
            .collect();
        self.commit_round(round, &routed);
        self.staging.live_remove(batch.deletes.iter().copied());
        self.staging.release_deletes(batch.deletes.iter().copied());
        self.staging.live_insert(new_tids.iter().copied());
        self.next_tid += batch.inserts.len() as u64;
        self.total_live = self.total_live + batch.inserts.len() as u64 - batch.deletes.len() as u64;
        Ok(self.publish(outcome.large, "apriori-remine", outcome.stats, new_tids))
    }

    /// Parks a drained batch for a retry once the dead worker rejoins:
    /// delete claims stay held and the batch's ops re-enter the
    /// capacity gate, so the bounded backlog keeps counting it.
    fn park_retry(&mut self, batch: UpdateBatch) {
        self.staging.reserve_restored(batch.num_ops());
        debug_assert!(self.retry.is_none(), "at most one round in flight");
        self.retry = Some(batch);
    }

    /// Publishes a new snapshot, mirroring the flat session's publish.
    fn publish(
        &mut self,
        new_large: LargeItemsets,
        algorithm: &'static str,
        stats: MiningStats,
        inserted_tids: Vec<Tid>,
    ) -> MaintenanceReport {
        let new_rules = generate_rules(&new_large, self.minconf);
        let version = self.state.version() + 1;
        let report = MaintenanceReport {
            algorithm,
            version,
            itemsets: ItemsetDiff::between(self.state.large(), &new_large),
            rules: RuleDiff::between(self.state.rules(), &new_rules),
            inserted_tids,
            num_transactions: self.total_live,
            stats,
        };
        self.state = Arc::new(SnapshotState::new(
            version,
            self.total_live,
            self.minsup,
            self.minconf,
            new_large,
            new_rules,
        ));
        report
    }
}

/// One worker's answer to a health probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerProbe {
    /// Live transactions in the shard.
    pub live: u64,
    /// Highest round the worker has decided (committed or aborted).
    pub decided_round: u64,
    /// A round staged and awaiting its phase-2 decision, if any.
    pub staged_round: Option<u64>,
}

impl Cluster {
    /// Probes one worker directly — the surviving-shard read path: while
    /// another shard recovers, probes (and [`snapshot`](Cluster::snapshot)
    /// reads) keep answering.
    pub fn probe(&self, shard: usize) -> Result<WorkerProbe> {
        if !self.workers[shard].up {
            return Err(down(shard, "worker is down"));
        }
        match self.workers[shard].call(&Message::HealthProbe)? {
            Message::Health {
                live,
                decided_round,
                staged_round,
            } => Ok(WorkerProbe {
                live,
                decided_round,
                staged_round,
            }),
            other => Err(down(shard, format!("unexpected probe reply: {other:?}"))),
        }
    }

    /// Kills worker `shard` the hard way: severs its transport (the
    /// worker loop exits, dropping all in-memory state — db slice,
    /// index, staged round) and joins the thread. Only the worker's
    /// storage namespace survives, which is exactly what
    /// [`restart_worker`](Cluster::restart_worker) recovers from.
    pub fn kill_worker(&mut self, shard: usize) {
        let (dead, _) = ChannelTransport::pair();
        *self.workers[shard]
            .transport
            .lock()
            .expect("transport lock") = Box::new(dead);
        self.workers[shard].up = false;
        if let Some(t) = self.threads[shard].take() {
            let _ = t.join();
        }
    }

    /// Restarts a dead worker from its storage namespace and runs the
    /// rejoin handshake: if the worker recovered with an undecided
    /// staged round in its WAL, the coordinator resolves it from the
    /// decision record — committed rounds complete (no acknowledged
    /// commit is lost), aborted rounds roll back. Once this returns the
    /// worker serves rounds again and a held retry batch becomes
    /// committable.
    pub fn restart_worker(&mut self, shard: usize) -> Result<()> {
        if self.workers[shard].up {
            return Ok(());
        }
        if let Some(t) = self.threads[shard].take() {
            let _ = t.join();
        }
        let (mut handle, thread) = spawn_worker(
            shard,
            Arc::clone(&self.storages[shard]),
            self.config.engine.clone(),
        );
        // The ops gauge counts since cluster start, not since restart.
        handle.ops = self.workers[shard].ops;
        self.workers[shard] = handle;
        self.threads[shard] = Some(thread);
        let probe = self.probe(shard)?;
        if let Some(round) = probe.staged_round {
            let committed = self.decisions.get(&round).copied().unwrap_or(false);
            let msg = if committed {
                Message::CommitRound { round }
            } else {
                Message::AbortRound { round }
            };
            match self.workers[shard].call(&msg)? {
                Message::Ok => {}
                other => return Err(down(shard, format!("rejoin resolution refused: {other:?}"))),
            }
        }
        self.workers[shard].staged_round = None;
        Ok(())
    }

    /// Checkpoints every worker (requires all up and nothing staged):
    /// each writes its rows + decided round atomically and truncates
    /// its WAL.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.ensure_all_up()?;
        for s in 0..self.workers.len() {
            match self.workers[s].call(&Message::Checkpoint) {
                Ok(Message::Ok) => {}
                Ok(Message::Err(reason)) => return Err(down(s, reason)),
                Ok(other) => return Err(down(s, format!("unexpected reply: {other:?}"))),
                Err(e) => {
                    self.workers[s].up = false;
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Re-shards the cluster to `new_spec`: computes the
    /// [`RangeMove`]s ([`ShardSpec::rebalance_to`]), fetches every
    /// shard's rows, shuts the old workers down, and reloads the rows —
    /// original tids preserved — through fresh workers under the new
    /// spec, reusing the same recovery/load machinery as bootstrap. The
    /// published snapshot is untouched (row placement never changes
    /// counts). Requires all workers up and nothing staged or parked.
    pub fn rebalance_to(
        &mut self,
        new_spec: ShardSpec,
        new_storages: Vec<Arc<dyn DurableStorage>>,
    ) -> Result<Vec<RangeMove>> {
        self.ensure_all_up()?;
        if self.staging.has_pending() || self.retry.is_some() {
            return Err(Error::Recovery {
                reason: "rebalance requires an empty backlog (commit first)".into(),
            });
        }
        if new_storages.len() != new_spec.num_shards() {
            return Err(Error::Recovery {
                reason: format!(
                    "{} storage namespaces for {} shards",
                    new_storages.len(),
                    new_spec.num_shards()
                ),
            });
        }
        let moves = self
            .spec
            .rebalance_to(&new_spec, self.next_tid)
            .map_err(|e| Error::Config(crate::error::BuildError::InvalidShardSpec(e)))?;
        let mut rows: Vec<(Tid, Transaction)> = Vec::new();
        for s in 0..self.workers.len() {
            match self.workers[s].call(&Message::FetchRows) {
                Ok(Message::Rows(v)) => rows.extend(v),
                Ok(other) => return Err(down(s, format!("unexpected rows reply: {other:?}"))),
                Err(e) => {
                    self.workers[s].up = false;
                    return Err(e);
                }
            }
        }
        self.shutdown_workers();
        self.spec = new_spec;
        self.storages = new_storages;
        self.workers = Vec::with_capacity(self.spec.num_shards());
        self.threads = Vec::with_capacity(self.spec.num_shards());
        for (s, storage) in self.storages.iter().enumerate() {
            let (handle, thread) = spawn_worker(s, Arc::clone(storage), self.config.engine.clone());
            self.workers.push(handle);
            self.threads.push(Some(thread));
        }
        // Reload under the new spec as one lockstep round, tids
        // preserved, then checkpoint so the new namespaces start clean.
        let round = self.round + 1;
        let mut routed = vec![(Vec::new(), Vec::new()); self.spec.num_shards()];
        for (tid, t) in rows {
            routed[self.spec.shard_of(tid)].0.push((tid, t));
        }
        self.stage_round(round, &routed)?;
        self.commit_round(round, &routed);
        self.checkpoint()?;
        Ok(moves)
    }

    /// Per-shard health gauges for the service's
    /// [`HealthReport`](crate::HealthReport) shards section: committed
    /// ops, the backlog routed to each shard (pending batches plus a
    /// parked retry, routed prospectively), and an `up`/`down` state.
    pub fn shard_health(&self) -> Vec<ShardHealth> {
        let mut backlog = vec![0u64; self.spec.num_shards()];
        let mut pending = StagingArea::merge_entries(self.staging.entries_snapshot());
        if let Some(held) = &self.retry {
            pending.inserts.extend(held.inserts.iter().cloned());
            pending.deletes.extend(held.deletes.iter().copied());
        }
        for (i, _) in pending.inserts.iter().enumerate() {
            backlog[self.spec.shard_of(Tid(self.next_tid + i as u64))] += 1;
        }
        for &tid in &pending.deletes {
            backlog[self.spec.shard_of(tid)] += 1;
        }
        self.workers
            .iter()
            .enumerate()
            .map(|(s, w)| ShardHealth {
                shard: s,
                ops: w.ops,
                backlog: backlog[s],
                state: if w.up { "up" } else { "down" },
            })
            .collect()
    }

    fn shutdown_workers(&mut self) {
        for s in 0..self.workers.len() {
            if self.workers[s].up {
                let _ = self.workers[s].call(&Message::Shutdown);
            }
        }
        self.workers.clear();
        for t in &mut self.threads {
            if let Some(t) = t.take() {
                let _ = t.join();
            }
        }
        self.threads.clear();
    }

    /// Orderly shutdown: every worker gets a `Shutdown`, threads are
    /// joined. Dropping the cluster does the same best-effort.
    pub fn shutdown(mut self) {
        self.shutdown_workers();
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown_workers();
    }
}

#[cfg(test)]
mod tests;

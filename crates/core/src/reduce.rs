//! §3.4 — reduction of the size of the updated database.
//!
//! Two trimming rules shrink what later iterations scan:
//!
//! * **`Reduce-db`** (increment side): while counting the sets in `C ∪ W`
//!   during the k-th scan of the increment, count for each item `I ∈ T`
//!   how many matched sets contain `I`. That number upper-bounds the
//!   number of large k-itemsets containing `I`; if it is below `k`, `I`
//!   cannot belong to any large (k+1)-itemset and is dropped. Transactions
//!   left with fewer than `k + 1` items are dropped entirely.
//! * **`Reduce-DB`** (original side): after `C` has been pruned against
//!   the increment, any item that belongs to no set of `L_k ∪ C` cannot be
//!   in a large (k+1)-itemset; it is removed while `DB` is scanned for the
//!   supports of `C`.
//!
//! The P-set optimisation of iteration 1 is the degenerate case of
//! `Reduce-DB`: items pruned from `C₁` by Lemma 2 are removed from every
//! transaction during the first scan of `DB`.

use fup_mining::Itemset;
use fup_tidb::{ItemId, Transaction};
use std::collections::{HashMap, HashSet};

/// Applies the `Reduce-db` rule to one transaction.
///
/// `matched` are the (sorted) item slices of the candidate/winner
/// k-itemsets found in `t` during this scan — the hash tree hands these
/// out straight from its flat candidate arena; `k` is the current
/// iteration. Returns the trimmed transaction, or `None` when it can no
/// longer contain a (k+1)-itemset.
pub fn reduce_db_transaction<'a>(
    t: &[ItemId],
    matched: impl Iterator<Item = &'a [ItemId]>,
    k: usize,
) -> Option<Transaction> {
    let mut hits: HashMap<ItemId, usize> = HashMap::new();
    for set in matched {
        for &item in set {
            *hits.entry(item).or_insert(0) += 1;
        }
    }
    let kept: Vec<ItemId> = t
        .iter()
        .copied()
        .filter(|i| hits.get(i).copied().unwrap_or(0) >= k)
        .collect();
    if kept.len() > k {
        Some(Transaction::from_sorted_vec(kept))
    } else {
        None
    }
}

/// The item universe of a collection of itemsets — the `L_k ∪ C` keep-set
/// of `Reduce-DB`.
pub fn item_universe<'a>(sets: impl Iterator<Item = &'a Itemset>) -> HashSet<ItemId> {
    let mut keep = HashSet::new();
    for set in sets {
        keep.extend(set.items().iter().copied());
    }
    keep
}

/// Applies the `Reduce-DB` rule to one transaction: keeps only items in
/// `keep`, dropping the transaction when fewer than `k + 1` items survive.
pub fn reduce_full_transaction(
    t: &[ItemId],
    keep: &HashSet<ItemId>,
    k: usize,
) -> Option<Transaction> {
    let kept: Vec<ItemId> = t.iter().copied().filter(|i| keep.contains(i)).collect();
    if kept.len() > k {
        Some(Transaction::from_sorted_vec(kept))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(items: &[u32]) -> Itemset {
        Itemset::from_items(items.iter().copied())
    }

    fn ids(items: &[u32]) -> Vec<ItemId> {
        items.iter().map(|&i| ItemId(i)).collect()
    }

    #[test]
    fn reduce_db_keeps_items_with_enough_matches() {
        // k = 2; transaction {1,2,3,4}; matched 2-sets {1,2},{1,3},{2,3}.
        // hits: 1→2, 2→2, 3→2, 4→0 → keep {1,2,3} (len 3 > 2).
        let matched = [s(&[1, 2]), s(&[1, 3]), s(&[2, 3])];
        let out = reduce_db_transaction(&ids(&[1, 2, 3, 4]), matched.iter().map(|x| x.items()), 2)
            .unwrap();
        assert_eq!(out.items(), ids(&[1, 2, 3]).as_slice());
    }

    #[test]
    fn reduce_db_drops_short_transactions() {
        // k = 2; only items 1 and 2 survive → len 2 ≤ k → dropped.
        let matched = [s(&[1, 2])];
        assert!(
            reduce_db_transaction(&ids(&[1, 2, 9]), matched.iter().map(|x| x.items()), 2).is_none()
        );
    }

    #[test]
    fn reduce_db_no_matches_drops_everything() {
        let matched: [&[ItemId]; 0] = [];
        assert!(reduce_db_transaction(&ids(&[1, 2, 3]), matched.into_iter(), 1).is_none());
    }

    #[test]
    fn item_universe_unions_items() {
        let sets = [s(&[1, 2]), s(&[2, 3])];
        let u = item_universe(sets.iter());
        assert_eq!(u.len(), 3);
        assert!(u.contains(&ItemId(1)));
        assert!(u.contains(&ItemId(3)));
    }

    #[test]
    fn reduce_full_keeps_only_universe_items() {
        let keep = item_universe([s(&[1, 2]), s(&[2, 3])].iter());
        let out = reduce_full_transaction(&ids(&[1, 2, 3, 7, 9]), &keep, 2).unwrap();
        assert_eq!(out.items(), ids(&[1, 2, 3]).as_slice());
        // Too few survivors → dropped.
        assert!(reduce_full_transaction(&ids(&[1, 7, 9]), &keep, 2).is_none());
    }
}
